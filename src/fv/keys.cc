#include "fv/keys.h"

namespace heat::fv {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

inline uint64_t
fnvMix(uint64_t h, uint64_t word)
{
    // Mix 8 bytes at a time; full-word FNV-1a keeps the hash cheap
    // while still covering every residue bit.
    return (h ^ word) * kFnvPrime;
}

} // namespace

uint64_t
RelinKeys::fingerprint() const
{
    uint64_t h = kFnvOffset;
    h = fnvMix(h, static_cast<uint64_t>(kind));
    h = fnvMix(h, static_cast<uint64_t>(digit_bits));
    h = fnvMix(h, keys.size());
    for (const auto &pair : keys) {
        for (const auto &poly : pair) {
            h = fnvMix(h, poly.residueCount());
            h = fnvMix(h, poly.degree());
            for (uint64_t word : poly.data())
                h = fnvMix(h, word);
        }
    }
    return h;
}

size_t
RelinKeys::byteSize() const
{
    size_t total = 0;
    for (const auto &pair : keys) {
        for (const auto &poly : pair)
            total += poly.residueCount() * poly.degree() * sizeof(uint32_t);
    }
    return total;
}

} // namespace heat::fv
