#include "fv/keys.h"

namespace heat::fv {

size_t
RelinKeys::byteSize() const
{
    size_t total = 0;
    for (const auto &pair : keys) {
        for (const auto &poly : pair)
            total += poly.residueCount() * poly.degree() * sizeof(uint32_t);
    }
    return total;
}

} // namespace heat::fv
