/**
 * @file
 * Randomness for FV: uniform ring elements, signed-binary (ternary)
 * secrets, and the sigma = 102 discrete Gaussian error distribution
 * sampled through a cumulative distribution table (CDT).
 */

#ifndef HEAT_FV_SAMPLER_H
#define HEAT_FV_SAMPLER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "fv/params.h"
#include "ntt/rns_poly.h"

namespace heat::fv {

/** Samples the polynomials FV needs, deterministically from a seed. */
class Sampler
{
  public:
    /**
     * @param params parameter set (fixes degree, bases and sigma).
     * @param seed PRNG seed; equal seeds reproduce identical samples.
     */
    Sampler(std::shared_ptr<const FvParams> params, uint64_t seed);

    /** Uniformly random polynomial over R_q (independent residues). */
    ntt::RnsPoly uniformQ();

    /**
     * Polynomial with coefficients uniform in {-1, 0, 1} over R_q
     * ("uniformly random signed binary" in the paper's words).
     */
    ntt::RnsPoly ternaryQ();

    /** Discrete Gaussian error polynomial over R_q. */
    ntt::RnsPoly gaussianQ();

    /** One discrete Gaussian sample (signed). */
    int64_t gaussianScalar();

    /** @return the CDT tail cut (maximum magnitude). */
    int64_t tailBound() const { return static_cast<int64_t>(cdt_.size()); }

  private:
    void buildCdt(double sigma);

    std::shared_ptr<const FvParams> params_;
    Xoshiro256 rng_;
    /** cdt_[k] = P(|X| <= k) scaled to 2^63. */
    std::vector<uint64_t> cdt_;
};

} // namespace heat::fv

#endif // HEAT_FV_SAMPLER_H
