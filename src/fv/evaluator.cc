#include "fv/evaluator.h"

#include <algorithm>

#include "common/panic.h"
#include "common/parallel.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace heat::fv {

namespace {

/**
 * Coefficient-block size for the lift/scale batch kernels: large
 * enough to amortize the per-call scratch rows and constant setup,
 * small enough that the blocks of a single residue row stay cache
 * resident across the sop128 passes.
 */
constexpr size_t kCoeffGrain = 512;

} // namespace

Evaluator::Evaluator(std::shared_ptr<const FvParams> params, ArithPath path)
    : params_(std::move(params)), path_(path)
{
}

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    Ciphertext c = a;
    addInPlace(c, b);
    return c;
}

void
Evaluator::addInPlace(Ciphertext &a, const Ciphertext &b) const
{
    OBS_SPAN("fv.add", "evaluator");
    panicIf(a.size() != b.size(), "ciphertext size mismatch in add");
    panicIf(a.level != b.level, "ciphertext level mismatch in add");
    for (size_t i = 0; i < a.size(); ++i)
        a[i].addInPlace(b[i]);
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    OBS_SPAN("fv.sub", "evaluator");
    panicIf(a.size() != b.size(), "ciphertext size mismatch in sub");
    panicIf(a.level != b.level, "ciphertext level mismatch in sub");
    Ciphertext c = a;
    for (size_t i = 0; i < c.size(); ++i)
        c[i].subInPlace(b[i]);
    return c;
}

void
Evaluator::negateInPlace(Ciphertext &a) const
{
    for (auto &poly : a.polys)
        poly.negateInPlace();
}

ntt::RnsPoly
Evaluator::scaledPlain(const Plaintext &plain, size_t level) const
{
    fatalIf(plain.coeffs.size() > params_->degree(), "plaintext too long");
    const auto &base = params_->qBase(level);
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    const uint64_t t = params_->plainModulus();
    for (size_t i = 0; i < base->size(); ++i) {
        const rns::Modulus &q_i = base->modulus(i);
        const uint64_t d = params_->deltaResidues(level)[i];
        auto r = poly.residue(i);
        for (size_t j = 0; j < plain.coeffs.size(); ++j)
            r[j] = q_i.mul(d, plain.coeffs[j] % t);
    }
    return poly;
}

ntt::RnsPoly
Evaluator::embeddedPlain(const Plaintext &plain, size_t level) const
{
    fatalIf(plain.coeffs.size() > params_->degree(), "plaintext too long");
    const auto &base = params_->qBase(level);
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    const uint64_t t = params_->plainModulus();
    for (size_t i = 0; i < base->size(); ++i) {
        auto r = poly.residue(i);
        const rns::Modulus &q_i = base->modulus(i);
        for (size_t j = 0; j < plain.coeffs.size(); ++j)
            r[j] = q_i.reduce(plain.coeffs[j] % t);
    }
    return poly;
}

void
Evaluator::addPlainInPlace(Ciphertext &ct, const Plaintext &plain) const
{
    ct[0].addInPlace(scaledPlain(plain, ct.level));
}

void
Evaluator::subPlainInPlace(Ciphertext &ct, const Plaintext &plain) const
{
    ct[0].subInPlace(scaledPlain(plain, ct.level));
}

Ciphertext
Evaluator::multiplyPlain(const Ciphertext &ct, const Plaintext &plain) const
{
    // Embed the plaintext unscaled in R_{q_l} and multiply both
    // ciphertext polynomials by it in the NTT domain.
    const auto &ctx = params_->qContext(ct.level);
    ntt::RnsPoly p = embeddedPlain(plain, ct.level);
    p.toNtt(ctx);

    Ciphertext out = ct;
    for (auto &poly : out.polys) {
        poly.toNtt(ctx);
        poly.mulPointwiseInPlace(p);
        poly.toCoeff(ctx);
    }
    return out;
}

ntt::RnsPoly
Evaluator::liftToFull(const ntt::RnsPoly &q_poly) const
{
    panicIf(q_poly.form() != ntt::PolyForm::kCoeff,
            "lift requires coefficient form");
    const size_t n = params_->degree();
    const size_t level = levelOf(q_poly);
    const auto &conv = params_->liftConverter(level);
    const size_t kq = q_poly.residueCount();
    const size_t kp = params_->pBase()->size();

    ntt::RnsPoly out(params_->fullBase(level), n, ntt::PolyForm::kCoeff);
    if (path_ == ArithPath::kHps) {
        parallelFor(n, kCoeffGrain, [&](size_t begin, size_t end) {
            // q residues are unchanged by the centered lift (x == x - q
            // mod q_i); the p residues come from the batch converter.
            std::vector<const uint64_t *> in_rows(kq);
            std::vector<uint64_t *> out_rows(kp);
            for (size_t i = 0; i < kq; ++i) {
                auto src = q_poly.residue(i);
                std::copy(src.begin() + begin, src.begin() + end,
                          out.residue(i).begin() + begin);
                in_rows[i] = src.data() + begin;
            }
            for (size_t i = 0; i < kp; ++i)
                out_rows[i] = out.residue(kq + i).data() + begin;
            conv.convertBatch(in_rows.data(), out_rows.data(),
                              end - begin);
        });
        return out;
    }
    parallelFor(n, kCoeffGrain, [&](size_t begin, size_t end) {
        std::vector<uint64_t> in(kq), ext(kp);
        for (size_t j = begin; j < end; ++j) {
            q_poly.gatherCoefficient(j, in);
            conv.convertExact(in, ext);
            for (size_t i = 0; i < kq; ++i)
                out.residue(i)[j] = in[i];
            for (size_t i = 0; i < kp; ++i)
                out.residue(kq + i)[j] = ext[i];
        }
    });
    return out;
}

ntt::RnsPoly
Evaluator::scaleToQ(const ntt::RnsPoly &full_poly) const
{
    panicIf(full_poly.form() != ntt::PolyForm::kCoeff,
            "scale requires coefficient form");
    const size_t n = params_->degree();
    const size_t kp = params_->pBase()->size();
    const size_t level =
        params_->levelForResidueCount(full_poly.residueCount());
    const auto &scaler = params_->scaler(level);
    const auto &back = params_->scaleBackConverter(level);
    const size_t kq = full_poly.residueCount() - kp;

    ntt::RnsPoly out(params_->qBase(level), n, ntt::PolyForm::kCoeff);
    if (path_ == ArithPath::kHps) {
        parallelFor(n, kCoeffGrain, [&](size_t begin, size_t end) {
            const size_t len = end - begin;
            std::vector<const uint64_t *> in_rows(kq + kp);
            for (size_t i = 0; i < kq + kp; ++i)
                in_rows[i] = full_poly.residue(i).data() + begin;
            // Scratch rows for the intermediate p-base result of the
            // scale, consumed directly by the back-conversion.
            std::vector<uint64_t> mid(kp * len);
            std::vector<uint64_t *> mid_rows(kp);
            std::vector<const uint64_t *> mid_rows_const(kp);
            for (size_t i = 0; i < kp; ++i) {
                mid_rows[i] = mid.data() + i * len;
                mid_rows_const[i] = mid_rows[i];
            }
            std::vector<uint64_t *> out_rows(kq);
            for (size_t i = 0; i < kq; ++i)
                out_rows[i] = out.residue(i).data() + begin;
            scaler.scaleBatch(in_rows.data(), mid_rows.data(), len);
            back.convertBatch(mid_rows_const.data(), out_rows.data(),
                              len);
        });
        return out;
    }
    parallelFor(n, kCoeffGrain, [&](size_t begin, size_t end) {
        std::vector<uint64_t> in(kq + kp), mid(kp), res(kq);
        for (size_t j = begin; j < end; ++j) {
            full_poly.gatherCoefficient(j, in);
            scaler.scaleExact(in, mid);
            back.convertExact(mid, res);
            out.scatterCoefficient(j, res);
        }
    });
    return out;
}

Ciphertext
Evaluator::multiplyNoRelin(const Ciphertext &a, const Ciphertext &b) const
{
    OBS_SPAN("fv.multiply_no_relin", "evaluator");
    panicIf(a.size() != 2 || b.size() != 2,
            "multiply expects 2-element ciphertexts");
    panicIf(a.level != b.level, "ciphertext level mismatch in multiply");

    // Step 1: Lift q->Q (Fig. 2 left column).
    ntt::RnsPoly a0 = liftToFull(a[0]);
    ntt::RnsPoly a1 = liftToFull(a[1]);
    ntt::RnsPoly b0 = liftToFull(b[0]);
    ntt::RnsPoly b1 = liftToFull(b[1]);

    // Step 2: tensor product via NTT over R_Q.
    const auto &ctx = params_->fullContext(a.level);
    a0.toNtt(ctx);
    a1.toNtt(ctx);
    b0.toNtt(ctx);
    b1.toNtt(ctx);

    ntt::RnsPoly t0 = a0;
    t0.mulPointwiseInPlace(b0);
    ntt::RnsPoly t1 = a0;
    t1.mulPointwiseInPlace(b1);
    t1.addMulPointwise(a1, b0);
    ntt::RnsPoly t2 = a1;
    t2.mulPointwiseInPlace(b1);

    t0.toCoeff(ctx);
    t1.toCoeff(ctx);
    t2.toCoeff(ctx);

    // Step 3: Scale Q->q (round(t x / q)).
    Ciphertext out;
    out.level = a.level;
    out.polys.push_back(scaleToQ(t0));
    out.polys.push_back(scaleToQ(t1));
    out.polys.push_back(scaleToQ(t2));
    return out;
}

std::vector<ntt::RnsPoly>
Evaluator::rnsDigits(const ntt::RnsPoly &poly) const
{
    panicIf(poly.form() != ntt::PolyForm::kCoeff,
            "digit decomposition requires coefficient form");
    const auto &base = params_->qBase(levelOf(poly));
    const size_t k = base->size();
    const size_t n = params_->degree();

    // Digit i broadcasts residue polynomial i to every channel; values
    // are < 2^30, so reduction mod the other primes is at most one
    // conditional subtraction — the paper's "cheap bit manipulation".
    const simd::Kernels &kern = simd::active();
    std::vector<ntt::RnsPoly> digits;
    digits.reserve(k);
    for (size_t i = 0; i < k; ++i) {
        ntt::RnsPoly d(base, n, ntt::PolyForm::kCoeff);
        auto src = poly.residue(i);
        parallelFor(k, [&](size_t c) {
            kern.reduce_u32(d.residue(c).data(), src.data(), n,
                            base->modulus(c));
        });
        digits.push_back(std::move(d));
    }
    return digits;
}

std::vector<ntt::RnsPoly>
Evaluator::positionalDigits(const ntt::RnsPoly &poly, int digit_bits) const
{
    panicIf(poly.form() != ntt::PolyForm::kCoeff,
            "digit decomposition requires coefficient form");
    const size_t level = levelOf(poly);
    const auto &base = params_->qBase(level);
    const size_t k = base->size();
    const size_t n = params_->degree();
    const int q_bits = params_->qBits(level);
    const size_t count =
        (static_cast<size_t>(q_bits) + digit_bits - 1) / digit_bits;

    // Positional decomposition needs the positional coefficient value:
    // exactly the CRT reconstruction the traditional architecture
    // materializes inside Scale (Sec. VI-C).
    std::vector<ntt::RnsPoly> digits(
        count, ntt::RnsPoly(base, n, ntt::PolyForm::kCoeff));
    std::vector<uint64_t> residues(k);
    for (size_t j = 0; j < n; ++j) {
        poly.gatherCoefficient(j, residues);
        mp::BigInt x = base->compose(residues);
        for (size_t d = 0; d < count; ++d) {
            mp::BigInt digit = (x >> static_cast<int>(d) * digit_bits) %
                               mp::BigInt::powerOfTwo(digit_bits);
            for (size_t c = 0; c < k; ++c) {
                digits[d].residue(c)[j] =
                    digit.modUint64(base->modulus(c).value());
            }
        }
    }
    return digits;
}

size_t
Evaluator::levelOf(const ntt::RnsPoly &q_poly) const
{
    const size_t kq = params_->qBase()->size();
    const size_t count = q_poly.residueCount();
    panicIf(count == 0 || count > kq,
            "polynomial residue count matches no level's q base");
    return kq - count;
}

ntt::RnsPoly
Evaluator::keyPolyAtLevel(const ntt::RnsPoly &key_poly, size_t level) const
{
    const auto &base = params_->qBase(level);
    ntt::RnsPoly out(base, params_->degree(), key_poly.form());
    for (size_t i = 0; i < base->size(); ++i) {
        auto src = key_poly.residue(i);
        auto dst = out.residue(i);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
}

void
Evaluator::keySwitchAccumulate(std::vector<ntt::RnsPoly> &digits,
                               const RelinKeys &key, size_t level,
                               ntt::RnsPoly &acc0, ntt::RnsPoly &acc1) const
{
    panicIf(digits.size() > key.digitCount(),
            "digit count exceeds key count");
    const auto &ctx = params_->qContext(level);
    for (size_t i = 0; i < digits.size(); ++i) {
        digits[i].toNtt(ctx);
        if (level == 0) {
            acc0.addMulPointwise(digits[i], key.keys[i][0]);
            acc1.addMulPointwise(digits[i], key.keys[i][1]);
        } else {
            acc0.addMulPointwise(digits[i],
                                 keyPolyAtLevel(key.keys[i][0], level));
            acc1.addMulPointwise(digits[i],
                                 keyPolyAtLevel(key.keys[i][1], level));
        }
    }
    acc0.toCoeff(ctx);
    acc1.toCoeff(ctx);
}

void
Evaluator::relinearizeInPlace(Ciphertext &ct, const RelinKeys &rlk) const
{
    OBS_SPAN("fv.relinearize", "evaluator");
    panicIf(ct.size() != 3, "relinearization expects a 3-element ct");

    std::vector<ntt::RnsPoly> digits =
        rlk.kind == DecompKind::kRnsDigits
            ? rnsDigits(ct[2])
            : positionalDigits(ct[2], rlk.digit_bits);
    panicIf(ct.level == 0 && digits.size() != rlk.digitCount(),
            "digit count does not match key count");

    ntt::RnsPoly acc0(params_->qBase(ct.level), params_->degree(),
                      ntt::PolyForm::kNtt);
    ntt::RnsPoly acc1(params_->qBase(ct.level), params_->degree(),
                      ntt::PolyForm::kNtt);
    keySwitchAccumulate(digits, rlk, ct.level, acc0, acc1);

    ct[0].addInPlace(acc0);
    ct[1].addInPlace(acc1);
    ct.polys.pop_back();
}

Ciphertext
Evaluator::multiply(const Ciphertext &a, const Ciphertext &b,
                    const RelinKeys &rlk) const
{
    OBS_SPAN("fv.multiply", "evaluator");
    Ciphertext c = multiplyNoRelin(a, b);
    relinearizeInPlace(c, rlk);
    return c;
}

Ciphertext
Evaluator::square(const Ciphertext &ct, const RelinKeys &rlk) const
{
    return multiply(ct, ct, rlk);
}

ntt::RnsPoly
Evaluator::modSwitchPoly(const ntt::RnsPoly &poly, size_t from_level) const
{
    panicIf(poly.form() != ntt::PolyForm::kCoeff,
            "mod-switch requires coefficient form");
    panicIf(from_level >= params_->maxLevel(),
            "cannot mod-switch past the last level");
    panicIf(levelOf(poly) != from_level,
            "polynomial residue count does not match from_level");
    const size_t n = params_->degree();
    const size_t live = params_->qPrimeCount(from_level);
    const auto &rounder = params_->modSwitchRounder(from_level);

    ntt::RnsPoly out(params_->qBase(from_level + 1), n,
                     ntt::PolyForm::kCoeff);
    if (path_ == ArithPath::kHps) {
        parallelFor(n, kCoeffGrain, [&](size_t begin, size_t end) {
            // ScaleRounder input order: dropped-prime residue first
            // (its "q" base), then the surviving residues (its "p").
            std::vector<const uint64_t *> in_rows(live);
            in_rows[0] = poly.residue(live - 1).data() + begin;
            for (size_t i = 0; i + 1 < live; ++i)
                in_rows[i + 1] = poly.residue(i).data() + begin;
            std::vector<uint64_t *> out_rows(live - 1);
            for (size_t i = 0; i + 1 < live; ++i)
                out_rows[i] = out.residue(i).data() + begin;
            rounder.scaleBatch(in_rows.data(), out_rows.data(),
                               end - begin);
        });
        return out;
    }
    parallelFor(n, kCoeffGrain, [&](size_t begin, size_t end) {
        std::vector<uint64_t> res(live), in(live), next(live - 1);
        for (size_t j = begin; j < end; ++j) {
            poly.gatherCoefficient(j, res);
            in[0] = res[live - 1];
            for (size_t i = 0; i + 1 < live; ++i)
                in[i + 1] = res[i];
            rounder.scaleExact(in, next);
            out.scatterCoefficient(j, next);
        }
    });
    return out;
}

Ciphertext
Evaluator::modSwitch(const Ciphertext &ct) const
{
    OBS_SPAN("fv.mod_switch", "evaluator");
    Ciphertext out;
    out.level = ct.level + 1;
    out.polys.reserve(ct.size());
    for (const auto &poly : ct.polys)
        out.polys.push_back(modSwitchPoly(poly, ct.level));
    return out;
}

void
Evaluator::modSwitchInPlace(Ciphertext &ct) const
{
    ct = modSwitch(ct);
}

Ciphertext
Evaluator::modSwitchTo(const Ciphertext &ct, size_t level) const
{
    panicIf(level < ct.level, "modSwitchTo cannot raise the level");
    Ciphertext out = ct;
    while (out.level < level)
        out = modSwitch(out);
    return out;
}

Ciphertext
Evaluator::applyGalois(const Ciphertext &ct, uint32_t galois_element,
                       const GaloisKeys &gkeys) const
{
    OBS_SPAN("fv.apply_galois", "evaluator");
    panicIf(ct.size() != 2, "applyGalois expects a 2-element ciphertext");
    // tau_1 is the identity: no permutation moves and no key-switch is
    // needed (or allowed to spend noise budget / require a key).
    if (galois_element == 1)
        return ct;
    fatalIf(!gkeys.has(galois_element), "missing Galois key for element ",
            galois_element);
    const RelinKeys &key = gkeys.keys.at(galois_element);
    const size_t n = params_->degree();
    const auto &base = params_->qBase(ct.level);

    // Permute both polynomials in coefficient representation.
    Ciphertext permuted;
    permuted.level = ct.level;
    for (int half = 0; half < 2; ++half) {
        ntt::RnsPoly out(base, n, ntt::PolyForm::kCoeff);
        for (size_t k = 0; k < base->size(); ++k) {
            applyGaloisToResidue(ct[half].residue(k), out.residue(k),
                                 galois_element, base->modulus(k));
        }
        permuted.polys.push_back(std::move(out));
    }

    // Key-switch tau_g(c1) from s(x^g) back to s:
    //   c0' = tau_g(c0) + sum_i D_i(tau_g(c1)) * key0_i
    //   c1' =            sum_i D_i(tau_g(c1)) * key1_i
    std::vector<ntt::RnsPoly> digits = rnsDigits(permuted[1]);
    ntt::RnsPoly acc0(base, n, ntt::PolyForm::kNtt);
    ntt::RnsPoly acc1(base, n, ntt::PolyForm::kNtt);
    keySwitchAccumulate(digits, key, ct.level, acc0, acc1);

    Ciphertext out;
    out.level = ct.level;
    acc0.addInPlace(permuted[0]);
    out.polys.push_back(std::move(acc0));
    out.polys.push_back(std::move(acc1));
    return out;
}

Ciphertext
Evaluator::applyGaloisHoisted(const Ciphertext &ct,
                              uint32_t galois_element,
                              const GaloisKeys &gkeys) const
{
    OBS_SPAN("fv.apply_galois_hoisted", "evaluator");
    panicIf(ct.size() != 2,
            "applyGaloisHoisted expects a 2-element ciphertext");
    if (galois_element == 1)
        return ct; // identity — see applyGalois
    fatalIf(!gkeys.has(galois_element), "missing Galois key for element ",
            galois_element);
    const RelinKeys &key = gkeys.keys.at(galois_element);
    const size_t n = params_->degree();
    const auto &base = params_->qBase(ct.level);
    const auto &ctx = params_->qContext(ct.level);

    // Decompose first, permute each digit afterwards: the decompose
    // (and the digits' forward NTTs) is what multiple rotations of one
    // ciphertext share on the hardware path.
    std::vector<ntt::RnsPoly> digits = rnsDigits(ct[1]);
    ntt::RnsPoly acc0(base, n, ntt::PolyForm::kNtt);
    ntt::RnsPoly acc1(base, n, ntt::PolyForm::kNtt);
    ntt::RnsPoly permuted(base, n, ntt::PolyForm::kCoeff);
    for (size_t i = 0; i < digits.size(); ++i) {
        for (size_t k = 0; k < base->size(); ++k) {
            applyGaloisToResidue(digits[i].residue(k),
                                 permuted.residue(k), galois_element,
                                 base->modulus(k));
        }
        permuted.setForm(ntt::PolyForm::kCoeff);
        permuted.toNtt(ctx);
        if (ct.level == 0) {
            acc0.addMulPointwise(permuted, key.keys[i][0]);
            acc1.addMulPointwise(permuted, key.keys[i][1]);
        } else {
            acc0.addMulPointwise(
                permuted, keyPolyAtLevel(key.keys[i][0], ct.level));
            acc1.addMulPointwise(
                permuted, keyPolyAtLevel(key.keys[i][1], ct.level));
        }
    }
    acc0.toCoeff(ctx);
    acc1.toCoeff(ctx);

    // c0' = tau_g(c0) + acc0, c1' = acc1.
    ntt::RnsPoly p0(base, n, ntt::PolyForm::kCoeff);
    for (size_t k = 0; k < base->size(); ++k) {
        applyGaloisToResidue(ct[0].residue(k), p0.residue(k),
                             galois_element, base->modulus(k));
    }
    p0.addInPlace(acc0);

    Ciphertext out;
    out.level = ct.level;
    out.polys.push_back(std::move(p0));
    out.polys.push_back(std::move(acc1));
    return out;
}

Ciphertext
Evaluator::rotateSlots(const Ciphertext &ct, int steps,
                       const GaloisKeys &gkeys) const
{
    return applyGalois(ct, galoisElementForStep(steps, params_->degree()),
                       gkeys);
}

Ciphertext
Evaluator::rotateColumns(const Ciphertext &ct,
                         const GaloisKeys &gkeys) const
{
    return applyGalois(
        ct, static_cast<uint32_t>(2 * params_->degree() - 1), gkeys);
}

Ciphertext
Evaluator::sumAllSlots(const Ciphertext &ct, const GaloisKeys &gkeys) const
{
    OBS_SPAN("fv.sum_all_slots", "evaluator");
    // Rotate-and-add over the row orbit (size n/2), then fold in the
    // conjugate column.
    Ciphertext acc = ct;
    for (size_t step = 1; step <= params_->degree() / 4; step *= 2) {
        Ciphertext rotated =
            rotateSlots(acc, static_cast<int>(step), gkeys);
        addInPlace(acc, rotated);
    }
    Ciphertext swapped = rotateColumns(acc, gkeys);
    addInPlace(acc, swapped);
    return acc;
}

} // namespace heat::fv
