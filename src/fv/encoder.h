/**
 * @file
 * Integer encoders: map machine integers to plaintext polynomials.
 *
 * Values are written as *balanced* base-b digits (digits in (-b/2, b/2],
 * stored modulo t) into the low coefficients of m(x). Decoding evaluates
 * the polynomial at x = b over centered representatives mod t. Balanced
 * digits leave headroom for digit growth during homomorphic additions
 * and multiplications before coefficients wrap modulo t.
 */

#ifndef HEAT_FV_ENCODER_H
#define HEAT_FV_ENCODER_H

#include <cstdint>
#include <memory>

#include "fv/keys.h"
#include "fv/params.h"
#include "mp/bigint.h"

namespace heat::fv {

/** Encodes integers as balanced base-b digit polynomials. */
class IntegerEncoder
{
  public:
    /**
     * @param params parameter set (fixes t and the ring degree).
     * @param base digit radix b, 2 <= b <= t; 0 selects b = t.
     */
    explicit IntegerEncoder(std::shared_ptr<const FvParams> params,
                            uint64_t base = 0);

    /** @return the digit radix. */
    uint64_t base() const { return base_; }

    /** Encode a signed integer as balanced base-b digits (LSB first). */
    Plaintext encode(int64_t value) const;

    /**
     * Decode by evaluating the polynomial at x = b with digit
     * representatives centered mod t in (-t/2, t/2].
     */
    mp::BigInt decode(const Plaintext &plain) const;

    /** decode() narrowed to int64 (panics on overflow). */
    int64_t decodeInt64(const Plaintext &plain) const;

  private:
    std::shared_ptr<const FvParams> params_;
    uint64_t base_;
};

} // namespace heat::fv

#endif // HEAT_FV_ENCODER_H
