#include "fv/sampler.h"

#include <cmath>

#include "common/panic.h"

namespace heat::fv {

Sampler::Sampler(std::shared_ptr<const FvParams> params, uint64_t seed)
    : params_(std::move(params)), rng_(seed)
{
    buildCdt(params_->sigma());
}

void
Sampler::buildCdt(double sigma)
{
    // Tail cut at 12 sigma: the mass beyond is ~exp(-72) < 2^-100.
    const int tail = static_cast<int>(std::ceil(12.0 * sigma));
    std::vector<long double> weights(tail + 1);
    long double total = 0.0L;
    for (int x = 0; x <= tail; ++x) {
        long double w = std::exp(
            -static_cast<long double>(x) * x / (2.0L * sigma * sigma));
        if (x == 0)
            w *= 0.5L; // zero is sampled once but gets two signs
        weights[x] = w;
        total += w;
    }
    cdt_.resize(tail + 1);
    long double cum = 0.0L;
    const long double scale = 9223372036854775808.0L; // 2^63
    for (int x = 0; x <= tail; ++x) {
        cum += weights[x];
        long double v = cum / total * scale;
        cdt_[x] = v >= scale ? (uint64_t(1) << 63)
                             : static_cast<uint64_t>(v);
    }
    cdt_.back() = uint64_t(1) << 63;
}

int64_t
Sampler::gaussianScalar()
{
    const uint64_t r = rng_.next();
    const uint64_t u = r >> 1;          // 63 uniform bits
    const bool negative = r & 1;

    // Binary search the smallest k with cdt_[k] > u.
    size_t lo = 0, hi = cdt_.size() - 1;
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (cdt_[mid] > u)
            hi = mid;
        else
            lo = mid + 1;
    }
    int64_t mag = static_cast<int64_t>(lo);
    return negative ? -mag : mag;
}

ntt::RnsPoly
Sampler::uniformQ()
{
    const auto &base = params_->qBase();
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    // CRT is a bijection, so independently uniform residues represent a
    // uniformly random element of [0, q).
    for (size_t i = 0; i < base->size(); ++i) {
        const uint64_t q_i = base->modulus(i).value();
        for (auto &x : poly.residue(i))
            x = rng_.uniformBelow(q_i);
    }
    return poly;
}

ntt::RnsPoly
Sampler::ternaryQ()
{
    const auto &base = params_->qBase();
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    for (size_t j = 0; j < params_->degree(); ++j) {
        const uint64_t v = rng_.uniformBelow(3); // 0, 1, 2 -> -1, 0, 1
        for (size_t i = 0; i < base->size(); ++i) {
            const rns::Modulus &q_i = base->modulus(i);
            uint64_t r = 0;
            if (v == 1)
                r = 1;
            else if (v == 0)
                r = q_i.value() - 1;
            poly.residue(i)[j] = r;
        }
    }
    return poly;
}

ntt::RnsPoly
Sampler::gaussianQ()
{
    const auto &base = params_->qBase();
    ntt::RnsPoly poly(base, params_->degree(), ntt::PolyForm::kCoeff);
    for (size_t j = 0; j < params_->degree(); ++j) {
        const int64_t e = gaussianScalar();
        for (size_t i = 0; i < base->size(); ++i) {
            const uint64_t q_i = base->modulus(i).value();
            const uint64_t mag = static_cast<uint64_t>(e < 0 ? -e : e) % q_i;
            poly.residue(i)[j] = e < 0 ? (mag == 0 ? 0 : q_i - mag) : mag;
        }
    }
    return poly;
}

} // namespace heat::fv
