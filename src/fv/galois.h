/**
 * @file
 * Galois automorphisms and slot rotations — the standard FV/BFV
 * extension beyond the paper's core operation set (SEAL exposes the
 * same capability; the paper's applications such as encrypted search
 * and aggregation benefit directly).
 *
 * The automorphism tau_g: m(x) -> m(x^g) for odd g modulo 2n is a
 * plaintext-slot permutation. Applying it to a ciphertext yields an
 * encryption under the rotated secret s(x^g); a key-switch with a
 * Galois key (structurally identical to a relinearization key, but
 * embedding s(x^g) instead of s^2) returns to the original secret.
 */

#ifndef HEAT_FV_GALOIS_H
#define HEAT_FV_GALOIS_H

#include <cstdint>
#include <map>
#include <vector>

#include "fv/keys.h"

namespace heat::fv {

/** Key-switching keys for a set of Galois elements. */
struct GaloisKeys
{
    /** keys[g] switches from s(x^g) back to s. */
    std::map<uint32_t, RelinKeys> keys;

    bool
    has(uint32_t galois_element) const
    {
        return keys.count(galois_element) != 0;
    }

    /** Content hash over every element's key set (see
     *  RelinKeys::fingerprint); an empty key set hashes to a fixed
     *  non-zero seed so "no keys" is still a distinct identity. */
    uint64_t fingerprint() const;
};

/**
 * Apply tau_g to a polynomial in coefficient representation:
 * coefficient i moves to index i*g mod 2n, negated when the product
 * wraps past n (x^n = -1).
 *
 * @param in input residues (length n), natural order.
 * @param out output residues (length n).
 * @param g odd Galois element in (0, 2n).
 * @param modulus coefficient modulus of this residue.
 */
void applyGaloisToResidue(std::span<const uint64_t> in,
                          std::span<uint64_t> out, uint32_t g,
                          const rns::Modulus &modulus);

/**
 * @return the period of the slot-row rotation: the multiplicative
 * order of 3 modulo 2n (= n/2 for the power-of-two rings used here).
 * Rotating by the period is the identity permutation, so rotation
 * steps are only meaningful modulo this value.
 */
size_t rotationStepPeriod(size_t degree);

/**
 * Normalize a rotation step count into the canonical range
 * [0, rotationStepPeriod(degree)). Steps congruent modulo the row
 * length describe the same slot permutation — and therefore the same
 * Galois element and key — so every step-consuming API reduces
 * through here; a result of 0 means the rotation is the identity.
 */
int normalizeRotationSteps(int64_t steps, size_t degree);

/** @return the Galois element rotating batched slots by @p steps:
 *  3^steps mod 2n (negative steps rotate the other way; steps are
 *  normalized with normalizeRotationSteps, so congruent step counts
 *  always yield the same element and step 0 yields element 1). */
uint32_t galoisElementForStep(int steps, size_t degree);

} // namespace heat::fv

#endif // HEAT_FV_GALOIS_H
