/**
 * @file
 * Arbitrary-precision signed integers built on 32-bit limbs.
 *
 * This is the multi-precision substrate used by the traditional-CRT
 * Lift/Scale datapath, exact decryption, CRT constant generation and the
 * noise-budget meter. The FV coprocessor's fast path (HPS) deliberately
 * avoids this type — which is precisely the paper's point — but the exact
 * reference is required both as the baseline architecture and as the golden
 * model for verifying the approximate datapaths.
 *
 * Representation: sign-magnitude with little-endian uint32 limbs and no
 * leading zero limbs. Zero is the empty limb vector with positive sign.
 */

#ifndef HEAT_MP_BIGINT_H
#define HEAT_MP_BIGINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace heat::mp {

/** Arbitrary-precision signed integer (sign-magnitude, 32-bit limbs). */
class BigInt
{
  public:
    /** Construct zero. */
    BigInt() = default;

    /** Construct from a signed 64-bit value. */
    BigInt(int64_t value);  // NOLINT: implicit by design

    /** Construct from an unsigned 64-bit value. */
    static BigInt fromUint64(uint64_t value);

    /**
     * Construct from a decimal string, optionally signed
     * ("-123", "456"), or a hex string with 0x prefix ("0xabc").
     */
    static BigInt fromString(const std::string &text);

    /** Construct from little-endian 32-bit limbs (non-negative). */
    static BigInt fromLimbs(std::vector<uint32_t> limbs);

    /** @return 2^exponent. */
    static BigInt powerOfTwo(int exponent);

    // --- observers ---------------------------------------------------

    /** @return true iff the value is zero. */
    bool isZero() const { return limbs_.empty(); }

    /** @return true iff the value is negative. */
    bool isNegative() const { return negative_; }

    /** @return number of significant bits of |value| (0 for zero). */
    int bitLength() const;

    /** @return bit @p i (0 = LSB) of |value|. */
    bool bit(int i) const;

    /** @return the value as uint64_t; panics if it does not fit. */
    uint64_t toUint64() const;

    /** @return the value as int64_t; panics if it does not fit. */
    int64_t toInt64() const;

    /** @return closest double (may lose precision; sign preserved). */
    double toDouble() const;

    /** @return decimal string representation. */
    std::string toString() const;

    /** @return lowercase hex representation with 0x prefix. */
    std::string toHexString() const;

    /** @return little-endian limb vector of |value|. */
    const std::vector<uint32_t> &limbs() const { return limbs_; }

    // --- comparison ---------------------------------------------------

    /** Three-way compare: negative, zero or positive as *this <=> other. */
    int compare(const BigInt &other) const;

    bool operator==(const BigInt &o) const { return compare(o) == 0; }
    bool operator!=(const BigInt &o) const { return compare(o) != 0; }
    bool operator<(const BigInt &o) const { return compare(o) < 0; }
    bool operator<=(const BigInt &o) const { return compare(o) <= 0; }
    bool operator>(const BigInt &o) const { return compare(o) > 0; }
    bool operator>=(const BigInt &o) const { return compare(o) >= 0; }

    // --- arithmetic ----------------------------------------------------

    BigInt operator-() const;
    BigInt abs() const;

    BigInt operator+(const BigInt &o) const;
    BigInt operator-(const BigInt &o) const;
    BigInt operator*(const BigInt &o) const;

    /**
     * Truncated division (C++ semantics): quotient rounds toward zero,
     * remainder takes the dividend's sign. Divisor must be nonzero.
     */
    BigInt operator/(const BigInt &o) const;
    BigInt operator%(const BigInt &o) const;

    BigInt &operator+=(const BigInt &o) { return *this = *this + o; }
    BigInt &operator-=(const BigInt &o) { return *this = *this - o; }
    BigInt &operator*=(const BigInt &o) { return *this = *this * o; }
    BigInt &operator/=(const BigInt &o) { return *this = *this / o; }
    BigInt &operator%=(const BigInt &o) { return *this = *this % o; }

    BigInt operator<<(int bits) const;
    BigInt operator>>(int bits) const;

    /**
     * Compute quotient and remainder in one pass (truncated division).
     *
     * @param divisor nonzero divisor.
     * @param remainder receives dividend - quotient*divisor.
     * @return the quotient.
     */
    BigInt divMod(const BigInt &divisor, BigInt &remainder) const;

    // --- number theory ---------------------------------------------------

    /** @return non-negative residue in [0, modulus); modulus > 0. */
    BigInt mod(const BigInt &modulus) const;

    /** @return |this| mod m for a 64-bit modulus (this must be >= 0). */
    uint64_t modUint64(uint64_t m) const;

    /** @return (this ^ exponent) mod modulus; exponent >= 0, modulus > 0. */
    BigInt modPow(const BigInt &exponent, const BigInt &modulus) const;

    /**
     * Modular inverse in [0, modulus).
     * Panics if gcd(this, modulus) != 1.
     */
    BigInt modInverse(const BigInt &modulus) const;

    /** Greatest common divisor of |a| and |b|. */
    static BigInt gcd(BigInt a, BigInt b);

  private:
    static BigInt addMagnitudes(const BigInt &a, const BigInt &b);
    /** Requires |a| >= |b|. */
    static BigInt subMagnitudes(const BigInt &a, const BigInt &b);
    static int compareMagnitudes(const BigInt &a, const BigInt &b);
    static void divModMagnitudes(const BigInt &a, const BigInt &b,
                                 BigInt &quotient, BigInt &remainder);

    void normalize();

    bool negative_ = false;
    std::vector<uint32_t> limbs_;
};

/** Stream a BigInt in decimal. */
std::ostream &operator<<(std::ostream &os, const BigInt &v);

} // namespace heat::mp

#endif // HEAT_MP_BIGINT_H
