/**
 * @file
 * Deterministic primality testing for 64-bit integers.
 *
 * Used when generating the 30-bit NTT-friendly RNS primes. The
 * Miller-Rabin witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}
 * is deterministic for all n < 3.3 * 10^24, far beyond the 64-bit range.
 */

#ifndef HEAT_MP_PRIMALITY_H
#define HEAT_MP_PRIMALITY_H

#include <cstdint>

namespace heat::mp {

/** @return true iff @p n is prime (deterministic for all 64-bit n). */
bool isPrime(uint64_t n);

/** Modular multiplication on 64-bit operands via 128-bit product. */
uint64_t mulMod64(uint64_t a, uint64_t b, uint64_t m);

/** Modular exponentiation base^exp mod m on 64-bit operands. */
uint64_t powMod64(uint64_t base, uint64_t exp, uint64_t m);

} // namespace heat::mp

#endif // HEAT_MP_PRIMALITY_H
