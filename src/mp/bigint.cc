#include "mp/bigint.h"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "common/bit_util.h"
#include "common/panic.h"

namespace heat::mp {

namespace {

constexpr uint64_t kLimbBase = uint64_t(1) << 32;

} // namespace

void
BigInt::normalize()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
    if (limbs_.empty())
        negative_ = false;
}

BigInt::BigInt(int64_t value)
{
    negative_ = value < 0;
    // Careful with INT64_MIN: negate in unsigned domain.
    uint64_t mag = negative_ ? ~static_cast<uint64_t>(value) + 1
                             : static_cast<uint64_t>(value);
    if (mag != 0)
        limbs_.push_back(static_cast<uint32_t>(mag));
    if (mag >> 32)
        limbs_.push_back(static_cast<uint32_t>(mag >> 32));
}

BigInt
BigInt::fromUint64(uint64_t value)
{
    BigInt r;
    if (value != 0)
        r.limbs_.push_back(static_cast<uint32_t>(value));
    if (value >> 32)
        r.limbs_.push_back(static_cast<uint32_t>(value >> 32));
    return r;
}

BigInt
BigInt::fromLimbs(std::vector<uint32_t> limbs)
{
    BigInt r;
    r.limbs_ = std::move(limbs);
    r.normalize();
    return r;
}

BigInt
BigInt::powerOfTwo(int exponent)
{
    panicIf(exponent < 0, "powerOfTwo with negative exponent");
    BigInt r;
    r.limbs_.assign(exponent / 32 + 1, 0);
    r.limbs_.back() = uint32_t(1) << (exponent % 32);
    return r;
}

BigInt
BigInt::fromString(const std::string &text)
{
    fatalIf(text.empty(), "BigInt::fromString: empty string");
    size_t pos = 0;
    bool negative = false;
    if (text[pos] == '-') {
        negative = true;
        ++pos;
    } else if (text[pos] == '+') {
        ++pos;
    }
    fatalIf(pos >= text.size(), "BigInt::fromString: no digits in '", text,
            "'");

    BigInt r;
    if (text.size() - pos > 2 && text[pos] == '0' &&
        (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
        for (size_t i = pos + 2; i < text.size(); ++i) {
            char c = static_cast<char>(std::tolower(text[i]));
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else
                fatal("BigInt::fromString: bad hex digit '", c, "'");
            r = (r << 4) + BigInt(digit);
        }
    } else {
        const BigInt ten(10);
        for (size_t i = pos; i < text.size(); ++i) {
            char c = text[i];
            fatalIf(c < '0' || c > '9',
                    "BigInt::fromString: bad decimal digit '", c, "'");
            r = r * ten + BigInt(c - '0');
        }
    }
    r.negative_ = negative && !r.isZero();
    return r;
}

int
BigInt::bitLength() const
{
    if (limbs_.empty())
        return 0;
    return static_cast<int>(limbs_.size() - 1) * 32 +
           heat::bitLength(limbs_.back());
}

bool
BigInt::bit(int i) const
{
    if (i < 0)
        return false;
    size_t limb = static_cast<size_t>(i) / 32;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 32)) & 1;
}

uint64_t
BigInt::toUint64() const
{
    panicIf(negative_, "toUint64 on negative value");
    panicIf(limbs_.size() > 2, "toUint64 overflow");
    uint64_t v = 0;
    if (limbs_.size() > 1)
        v = uint64_t(limbs_[1]) << 32;
    if (!limbs_.empty())
        v |= limbs_[0];
    return v;
}

int64_t
BigInt::toInt64() const
{
    BigInt mag = abs();
    uint64_t v = mag.toUint64();
    if (negative_) {
        panicIf(v > uint64_t(1) << 63, "toInt64 overflow");
        return -static_cast<int64_t>(v - 1) - 1;
    }
    panicIf(v > static_cast<uint64_t>(INT64_MAX), "toInt64 overflow");
    return static_cast<int64_t>(v);
}

double
BigInt::toDouble() const
{
    double v = 0;
    for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it)
        v = v * 4294967296.0 + static_cast<double>(*it);
    return negative_ ? -v : v;
}

int
BigInt::compareMagnitudes(const BigInt &a, const BigInt &b)
{
    if (a.limbs_.size() != b.limbs_.size())
        return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
    for (size_t i = a.limbs_.size(); i-- > 0;) {
        if (a.limbs_[i] != b.limbs_[i])
            return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
    return 0;
}

int
BigInt::compare(const BigInt &other) const
{
    if (negative_ != other.negative_)
        return negative_ ? -1 : 1;
    int mag = compareMagnitudes(*this, other);
    return negative_ ? -mag : mag;
}

BigInt
BigInt::operator-() const
{
    BigInt r = *this;
    if (!r.isZero())
        r.negative_ = !r.negative_;
    return r;
}

BigInt
BigInt::abs() const
{
    BigInt r = *this;
    r.negative_ = false;
    return r;
}

BigInt
BigInt::addMagnitudes(const BigInt &a, const BigInt &b)
{
    BigInt r;
    const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
    r.limbs_.resize(n + 1, 0);
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
        uint64_t sum = carry;
        if (i < a.limbs_.size())
            sum += a.limbs_[i];
        if (i < b.limbs_.size())
            sum += b.limbs_[i];
        r.limbs_[i] = static_cast<uint32_t>(sum);
        carry = sum >> 32;
    }
    r.limbs_[n] = static_cast<uint32_t>(carry);
    r.normalize();
    return r;
}

BigInt
BigInt::subMagnitudes(const BigInt &a, const BigInt &b)
{
    BigInt r;
    r.limbs_.resize(a.limbs_.size(), 0);
    int64_t borrow = 0;
    for (size_t i = 0; i < a.limbs_.size(); ++i) {
        int64_t diff = int64_t(a.limbs_[i]) - borrow;
        if (i < b.limbs_.size())
            diff -= b.limbs_[i];
        if (diff < 0) {
            diff += static_cast<int64_t>(kLimbBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        r.limbs_[i] = static_cast<uint32_t>(diff);
    }
    panicIf(borrow != 0, "subMagnitudes underflow");
    r.normalize();
    return r;
}

BigInt
BigInt::operator+(const BigInt &o) const
{
    if (negative_ == o.negative_) {
        BigInt r = addMagnitudes(*this, o);
        r.negative_ = negative_ && !r.isZero();
        return r;
    }
    int cmp = compareMagnitudes(*this, o);
    if (cmp == 0)
        return BigInt();
    BigInt r = cmp > 0 ? subMagnitudes(*this, o) : subMagnitudes(o, *this);
    r.negative_ = (cmp > 0 ? negative_ : o.negative_) && !r.isZero();
    return r;
}

BigInt
BigInt::operator-(const BigInt &o) const
{
    return *this + (-o);
}

BigInt
BigInt::operator*(const BigInt &o) const
{
    if (isZero() || o.isZero())
        return BigInt();
    BigInt r;
    r.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        uint64_t carry = 0;
        const uint64_t ai = limbs_[i];
        for (size_t j = 0; j < o.limbs_.size(); ++j) {
            uint64_t cur = r.limbs_[i + j] + ai * o.limbs_[j] + carry;
            r.limbs_[i + j] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
        }
        size_t k = i + o.limbs_.size();
        while (carry) {
            uint64_t cur = r.limbs_[k] + carry;
            r.limbs_[k] = static_cast<uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    r.negative_ = negative_ != o.negative_;
    r.normalize();
    return r;
}

BigInt
BigInt::operator<<(int bits) const
{
    panicIf(bits < 0, "negative shift");
    if (isZero() || bits == 0)
        return *this;
    const int limb_shift = bits / 32;
    const int bit_shift = bits % 32;
    BigInt r;
    r.negative_ = negative_;
    r.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (size_t i = 0; i < limbs_.size(); ++i) {
        uint64_t v = uint64_t(limbs_[i]) << bit_shift;
        r.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
        r.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
    }
    r.normalize();
    return r;
}

BigInt
BigInt::operator>>(int bits) const
{
    panicIf(bits < 0, "negative shift");
    if (isZero() || bits == 0)
        return *this;
    const size_t limb_shift = static_cast<size_t>(bits) / 32;
    const int bit_shift = bits % 32;
    if (limb_shift >= limbs_.size())
        return BigInt();
    BigInt r;
    r.negative_ = negative_;
    r.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (size_t i = 0; i < r.limbs_.size(); ++i) {
        uint64_t v = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs_.size())
            v |= uint64_t(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
        r.limbs_[i] = static_cast<uint32_t>(v);
    }
    r.normalize();
    return r;
}

void
BigInt::divModMagnitudes(const BigInt &a, const BigInt &b, BigInt &quotient,
                         BigInt &remainder)
{
    panicIf(b.isZero(), "division by zero");
    if (compareMagnitudes(a, b) < 0) {
        quotient = BigInt();
        remainder = a.abs();
        return;
    }
    if (b.limbs_.size() == 1) {
        // Short division by a single limb.
        const uint64_t d = b.limbs_[0];
        BigInt q;
        q.limbs_.assign(a.limbs_.size(), 0);
        uint64_t rem = 0;
        for (size_t i = a.limbs_.size(); i-- > 0;) {
            uint64_t cur = (rem << 32) | a.limbs_[i];
            q.limbs_[i] = static_cast<uint32_t>(cur / d);
            rem = cur % d;
        }
        q.normalize();
        quotient = q;
        remainder = fromUint64(rem);
        return;
    }

    // Knuth Algorithm D. Normalize so the divisor's top limb has its
    // high bit set.
    const int shift = 32 - heat::bitLength(b.limbs_.back());
    BigInt u = a.abs() << shift;
    BigInt v = b.abs() << shift;
    const size_t n = v.limbs_.size();
    const size_t m = u.limbs_.size() - n;
    u.limbs_.push_back(0); // u has m+n+1 limbs

    BigInt q;
    q.limbs_.assign(m + 1, 0);

    const uint64_t v_high = v.limbs_[n - 1];
    const uint64_t v_next = v.limbs_[n - 2];

    for (size_t j = m + 1; j-- > 0;) {
        // Estimate the quotient digit from the top limbs.
        uint64_t numer = (uint64_t(u.limbs_[j + n]) << 32) |
                         u.limbs_[j + n - 1];
        uint64_t qhat = numer / v_high;
        uint64_t rhat = numer % v_high;
        while (qhat >= kLimbBase ||
               qhat * v_next > ((rhat << 32) | u.limbs_[j + n - 2])) {
            --qhat;
            rhat += v_high;
            if (rhat >= kLimbBase)
                break;
        }

        // Multiply-subtract qhat * v from u[j .. j+n].
        int64_t borrow = 0;
        uint64_t carry = 0;
        for (size_t i = 0; i < n; ++i) {
            uint64_t p = qhat * v.limbs_[i] + carry;
            carry = p >> 32;
            int64_t t = int64_t(u.limbs_[i + j]) -
                        int64_t(p & 0xFFFFFFFFull) - borrow;
            if (t < 0) {
                t += static_cast<int64_t>(kLimbBase);
                borrow = 1;
            } else {
                borrow = 0;
            }
            u.limbs_[i + j] = static_cast<uint32_t>(t);
        }
        int64_t t = int64_t(u.limbs_[j + n]) - int64_t(carry) - borrow;
        if (t < 0) {
            // Estimate was one too large: add the divisor back.
            t += static_cast<int64_t>(kLimbBase);
            --qhat;
            uint64_t c = 0;
            for (size_t i = 0; i < n; ++i) {
                uint64_t sum = uint64_t(u.limbs_[i + j]) + v.limbs_[i] + c;
                u.limbs_[i + j] = static_cast<uint32_t>(sum);
                c = sum >> 32;
            }
            t += static_cast<int64_t>(c);
        }
        u.limbs_[j + n] = static_cast<uint32_t>(t);
        q.limbs_[j] = static_cast<uint32_t>(qhat);
    }

    q.normalize();
    quotient = q;
    u.limbs_.resize(n);
    u.normalize();
    remainder = u >> shift;
}

BigInt
BigInt::divMod(const BigInt &divisor, BigInt &remainder) const
{
    BigInt q, r;
    divModMagnitudes(*this, divisor, q, r);
    // Truncated semantics: quotient sign is XOR, remainder follows dividend.
    q.negative_ = (negative_ != divisor.negative_) && !q.isZero();
    r.negative_ = negative_ && !r.isZero();
    remainder = r;
    return q;
}

BigInt
BigInt::operator/(const BigInt &o) const
{
    BigInt r;
    return divMod(o, r);
}

BigInt
BigInt::operator%(const BigInt &o) const
{
    BigInt r;
    divMod(o, r);
    return r;
}

BigInt
BigInt::mod(const BigInt &modulus) const
{
    panicIf(modulus.isZero() || modulus.isNegative(),
            "mod requires a positive modulus");
    BigInt r = *this % modulus;
    if (r.isNegative())
        r += modulus;
    return r;
}

uint64_t
BigInt::modUint64(uint64_t m) const
{
    panicIf(m == 0, "modUint64 by zero");
    panicIf(negative_, "modUint64 on negative value");
    uint128_t rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;)
        rem = ((rem << 32) | limbs_[i]) % m;
    return static_cast<uint64_t>(rem);
}

BigInt
BigInt::modPow(const BigInt &exponent, const BigInt &modulus) const
{
    panicIf(exponent.isNegative(), "modPow with negative exponent");
    BigInt base = mod(modulus);
    BigInt result(1);
    result = result.mod(modulus);
    for (int i = exponent.bitLength(); i-- > 0;) {
        result = (result * result).mod(modulus);
        if (exponent.bit(i))
            result = (result * base).mod(modulus);
    }
    return result;
}

BigInt
BigInt::modInverse(const BigInt &modulus) const
{
    // Extended Euclid on (modulus, this mod modulus).
    BigInt r0 = modulus, r1 = mod(modulus);
    BigInt t0(0), t1(1);
    while (!r1.isZero()) {
        BigInt rem;
        BigInt q = r0.divMod(r1, rem);
        r0 = r1;
        r1 = rem;
        BigInt t2 = t0 - q * t1;
        t0 = t1;
        t1 = t2;
    }
    panicIf(r0 != BigInt(1), "modInverse: arguments not coprime");
    return t0.mod(modulus);
}

BigInt
BigInt::gcd(BigInt a, BigInt b)
{
    a = a.abs();
    b = b.abs();
    while (!b.isZero()) {
        BigInt r = a % b;
        a = b;
        b = r;
    }
    return a;
}

std::string
BigInt::toString() const
{
    if (isZero())
        return "0";
    std::string digits;
    BigInt v = abs();
    const BigInt chunk_div(1000000000); // 10^9 per short division
    while (!v.isZero()) {
        BigInt rem;
        v = v.divMod(chunk_div, rem);
        uint64_t r = rem.isZero() ? 0 : rem.toUint64();
        for (int i = 0; i < 9; ++i) {
            digits.push_back(static_cast<char>('0' + r % 10));
            r /= 10;
        }
    }
    while (digits.size() > 1 && digits.back() == '0')
        digits.pop_back();
    if (negative_)
        digits.push_back('-');
    std::reverse(digits.begin(), digits.end());
    return digits;
}

std::string
BigInt::toHexString() const
{
    if (isZero())
        return "0x0";
    static const char *kHex = "0123456789abcdef";
    std::string out;
    for (size_t i = limbs_.size(); i-- > 0;) {
        for (int nibble = 7; nibble >= 0; --nibble)
            out.push_back(kHex[(limbs_[i] >> (nibble * 4)) & 0xF]);
    }
    size_t first = out.find_first_not_of('0');
    out = out.substr(first);
    return (negative_ ? "-0x" : "0x") + out;
}

std::ostream &
operator<<(std::ostream &os, const BigInt &v)
{
    return os << v.toString();
}

} // namespace heat::mp
