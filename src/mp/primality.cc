#include "mp/primality.h"

#include <initializer_list>

#include "common/bit_util.h"

namespace heat::mp {

uint64_t
mulMod64(uint64_t a, uint64_t b, uint64_t m)
{
    return static_cast<uint64_t>(uint128_t(a) * b % m);
}

uint64_t
powMod64(uint64_t base, uint64_t exp, uint64_t m)
{
    uint64_t result = 1 % m;
    base %= m;
    while (exp) {
        if (exp & 1)
            result = mulMod64(result, base, m);
        base = mulMod64(base, base, m);
        exp >>= 1;
    }
    return result;
}

bool
isPrime(uint64_t n)
{
    if (n < 2)
        return false;
    for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                       23ull, 29ull, 31ull, 37ull}) {
        if (n == p)
            return true;
        if (n % p == 0)
            return false;
    }
    uint64_t d = n - 1;
    int s = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++s;
    }
    for (uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                       23ull, 29ull, 31ull, 37ull}) {
        uint64_t x = powMod64(a, d, n);
        if (x == 1 || x == n - 1)
            continue;
        bool composite = true;
        for (int i = 1; i < s; ++i) {
            x = mulMod64(x, x, n);
            if (x == n - 1) {
                composite = false;
                break;
            }
        }
        if (composite)
            return false;
    }
    return true;
}

} // namespace heat::mp
