/**
 * @file
 * heat::poly — depth-aware encrypted polynomial evaluation.
 *
 * Evaluating a plaintext-coefficient polynomial p(x) on an encrypted x
 * is the canonical deep-circuit FHE workload (KU Leuven's polyfunction
 * evaluation over HElib; Medha validates its microcoded accelerator on
 * the same multiply-heavy shape). PolynomialEvaluator lowers p into a
 * compiler::Circuit two ways:
 *
 *  - Horner (the naive baseline): d - 1 non-scalar multiplications at
 *    multiplicative depth d - 1 — at degree 15 that is depth 14, far
 *    beyond the depth-4 budget the paper's parameter set is sized for
 *    (Sec. III-A), so the compiler's noise pass rejects it;
 *  - Paterson-Stockmeyer baby-step/giant-step: baby powers x^1..x^k
 *    and giant powers x^k, x^2k, x^4k.. are precomputed once and
 *    shared across all coefficient blocks through the DAG (the power
 *    cache is the common-subexpression reuse), the blocks are scalar
 *    work only (MultPlain/AddPlain/Add), and a balanced combine tree
 *    keeps the multiplicative depth at ceil(log2 d) — 4 for degree 15
 *    — with ~2 sqrt(d) non-scalar multiplications (7 at degree 15
 *    versus Horner's 14).
 *
 * Coefficients are per-slot scalars: one ciphertext carries n batched
 * values (BatchEncoder) and the circuit evaluates p slot-wise, so a
 * single submission through service::ExecutionService computes p on n
 * inputs. Circuits are plain compiler::Circuits — compile once with
 * compiler::compileCircuit (the noise pass annotates every node with
 * its predicted remaining budget) and submit many times.
 */

#ifndef HEAT_POLY_POLY_H
#define HEAT_POLY_POLY_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "compiler/circuit.h"
#include "fv/batch_encoder.h"
#include "fv/params.h"

namespace heat::poly {

/** How a polynomial is lowered to a circuit. */
enum class EvalStrategy : uint8_t
{
    kHorner,            ///< naive chain: depth d-1, d-1 ct-ct mults
    kPatersonStockmeyer ///< baby/giant steps: depth ceil(log2 d)
};

/** @return a printable name. */
const char *evalStrategyName(EvalStrategy strategy);

/** Shape summary of one lowered evaluation plan. */
struct PlanInfo
{
    EvalStrategy strategy = EvalStrategy::kHorner;
    /** Trimmed polynomial degree d. */
    int degree = 0;
    /** Baby-step block size k (0 for Horner). */
    size_t baby_step = 0;
    /** Giant powers materialized: x^k, x^2k, ... (0 for Horner). */
    size_t giant_count = 0;
    /** Non-scalar (ciphertext x ciphertext) multiplications. */
    size_t non_scalar_mults = 0;
    /** Multiplicative depth of the circuit. */
    int mult_depth = 0;
    /** Total circuit operations (compiler::Circuit::opCount). */
    size_t op_count = 0;
};

/**
 * Lowers one plaintext-coefficient polynomial (degree 1..31) over an
 * encrypted batched input into compiler::Circuits.
 *
 * Degree 15 is the largest degree whose Paterson-Stockmeyer plan fits
 * the multiplicative depth 4 the paper's parameter sizing story
 * revolves around; a degree 16..31 plan is depth 5 and needs the
 * compiler's level assignment (CompilerOptions::auto_mod_switch) to
 * compile under NoiseCheck::kReject on the depth-4 sets. Coefficients
 * are reduced modulo the plain modulus t (which must support batching)
 * and trailing zero coefficients are trimmed; the trimmed degree must
 * be at least 1.
 */
class PolynomialEvaluator
{
  public:
    /** Largest supported polynomial degree. */
    static constexpr int kMaxDegree = 31;

    /**
     * @param params parameter set (plain modulus must support
     *        batching — the coefficients are broadcast across slots).
     * @param coefficients c0..cd, constant term first, reduced mod t.
     */
    PolynomialEvaluator(std::shared_ptr<const fv::FvParams> params,
                        std::span<const uint64_t> coefficients);

    /** @return the trimmed degree d >= 1. */
    int degree() const { return static_cast<int>(coeffs_.size()) - 1; }

    /** @return the coefficients (trimmed, reduced mod t). */
    const std::vector<uint64_t> &coefficients() const { return coeffs_; }

    /**
     * Lower the polynomial with @p strategy: one input (the encrypted
     * x), one output (p(x), slot-wise). Rebuilt on every call — the
     * circuit is a plain value; cache the compiled form instead.
     */
    compiler::Circuit circuit(EvalStrategy strategy) const;

    /** @return the shape summary of circuit(strategy). */
    PlanInfo plan(EvalStrategy strategy) const;

    /** Plaintext reference: p(x) mod t via Horner. */
    uint64_t reference(uint64_t x) const;

    /** Slot-wise plaintext reference over a whole input vector. */
    std::vector<uint64_t> reference(
        std::span<const uint64_t> xs) const;

  private:
    std::shared_ptr<const fv::FvParams> params_;
    fv::BatchEncoder encoder_;
    std::vector<uint64_t> coeffs_; // c0..cd, cd != 0
};

/**
 * Interpolate the unique polynomial of degree < points.size() through
 * (i, points[i]) for i = 0.. over the prime field Z_t (Lagrange).
 * With 16 points this yields a degree-<=15 polynomial computing ANY
 * function of a 4-bit encrypted value — thresholds, S-boxes, sign —
 * which is what the encrypted_polyfunc example feeds the evaluator.
 *
 * @param t prime plaintext modulus, t > points.size().
 * @return coefficients c0..c_{points.size()-1} (untrimmed).
 */
std::vector<uint64_t> interpolateOnRange(std::span<const uint64_t> points,
                                         uint64_t t);

} // namespace heat::poly

#endif // HEAT_POLY_POLY_H
