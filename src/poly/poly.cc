#include "poly/poly.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "common/panic.h"
#include "mp/primality.h"

namespace heat::poly {

using compiler::CircuitBuilder;
using compiler::kNoValue;
using compiler::ValueId;

const char *
evalStrategyName(EvalStrategy strategy)
{
    switch (strategy) {
      case EvalStrategy::kHorner:
        return "Horner";
      case EvalStrategy::kPatersonStockmeyer:
        return "Paterson-Stockmeyer";
    }
    panic("unknown evaluation strategy");
}

namespace {

/**
 * Memoized powers of the encrypted input: every x^e is built exactly
 * once (the DAG's common-subexpression reuse for baby and giant steps
 * alike) via minimal-depth binary powering, so depth(x^e) =
 * ceil(log2 e) and power-of-two exponents are pure squaring chains.
 */
class PowerCache
{
  public:
    PowerCache(CircuitBuilder &b, ValueId x) : b_(b) { pow_[1] = x; }

    ValueId
    get(size_t e)
    {
        panicIf(e == 0, "x^0 is a constant, not a power");
        const auto it = pow_.find(e);
        if (it != pow_.end())
            return it->second;
        const size_t lo = e / 2;
        const size_t hi = e - lo;
        const ValueId v = lo == hi ? b_.square(get(lo))
                                   : b_.mult(get(lo), get(hi));
        pow_[e] = v;
        return v;
    }

  private:
    CircuitBuilder &b_;
    std::map<size_t, ValueId> pow_;
};

/** A partial sum: an optional ciphertext value plus a pending scalar
 *  constant, kept separate so constants ride up the combine tree for
 *  free and fold into a single AddPlain at the last moment. */
struct Part
{
    ValueId value = kNoValue;
    uint64_t constant = 0;

    bool empty() const { return value == kNoValue && constant == 0; }
};

} // namespace

PolynomialEvaluator::PolynomialEvaluator(
    std::shared_ptr<const fv::FvParams> params,
    std::span<const uint64_t> coefficients)
    : params_(std::move(params)), encoder_(params_)
{
    const uint64_t t = params_->plainModulus();
    coeffs_.assign(coefficients.begin(), coefficients.end());
    for (uint64_t &c : coeffs_)
        c %= t;
    while (!coeffs_.empty() && coeffs_.back() == 0)
        coeffs_.pop_back();
    fatalIf(coeffs_.size() < 2,
            "polynomial must have degree >= 1 after reduction mod t "
            "(an encrypted evaluation of a constant is meaningless)");
    fatalIf(degree() > kMaxDegree, "polynomial degree ", degree(),
            " exceeds the supported maximum of ", kMaxDegree);
}

namespace {

/** Builder state shared by the two lowering strategies. */
class CircuitLowering
{
  public:
    CircuitLowering(const fv::BatchEncoder &encoder,
                    std::span<const uint64_t> coeffs)
        : encoder_(encoder), coeffs_(coeffs), x_(b_.input()), pc_(b_, x_)
    {
    }

    compiler::Circuit
    horner(PlanInfo *info)
    {
        const int d = static_cast<int>(coeffs_.size()) - 1;
        // acc starts as c_d; the first Horner step acc*x is therefore
        // a plaintext multiplication, every later one a ct-ct mult.
        ValueId acc = coeffs_[d] == 1
                          ? x_
                          : b_.multPlain(x_, constant(coeffs_[d]));
        if (coeffs_[d - 1] != 0)
            acc = b_.addPlain(acc, constant(coeffs_[d - 1]));
        for (int i = d - 2; i >= 0; --i) {
            acc = b_.mult(acc, x_);
            if (coeffs_[i] != 0)
                acc = b_.addPlain(acc, constant(coeffs_[i]));
        }
        b_.output(acc);
        return finish(EvalStrategy::kHorner, 0, info);
    }

    compiler::Circuit
    patersonStockmeyer(PlanInfo *info)
    {
        const size_t d = coeffs_.size() - 1;
        // Baby-step block size: the smallest power of two >=
        // sqrt(d + 1). Power-of-two blocks make every giant power a
        // squaring chain and the combine tree perfectly balanced,
        // which is what pins the depth at ceil(log2 d).
        k_ = 1;
        while (k_ * k_ < d + 1)
            k_ *= 2;
        const size_t blocks = (d + k_) / k_; // ceil((d+1)/k)
        size_t leaves = 1;
        while (leaves < blocks)
            leaves *= 2;

        Part result = combine(0, leaves);
        panicIf(result.value == kNoValue,
                "a degree >= 1 polynomial always has a ciphertext term");
        if (result.constant != 0)
            result.value =
                b_.addPlain(result.value, constant(result.constant));
        b_.output(result.value);
        return finish(EvalStrategy::kPatersonStockmeyer, k_, info);
    }

  private:
    fv::Plaintext
    constant(uint64_t c)
    {
        return encoder_.encode(
            std::vector<uint64_t>(encoder_.slotCount(), c));
    }

    /** Scalar-only evaluation of coefficient block @p j over the baby
     *  powers: sum_{i>=1} c_{jk+i} x^i as a value, c_{jk} as the
     *  pending constant. */
    Part
    block(size_t j)
    {
        const size_t base = j * k_;
        Part part;
        if (base >= coeffs_.size())
            return part;
        part.constant = coeffs_[base];
        for (size_t i = 1; i < k_ && base + i < coeffs_.size(); ++i) {
            const uint64_t c = coeffs_[base + i];
            if (c == 0)
                continue;
            const ValueId term =
                c == 1 ? pc_.get(i)
                       : b_.multPlain(pc_.get(i), constant(c));
            part.value = part.value == kNoValue
                             ? term
                             : b_.add(part.value, term);
        }
        return part;
    }

    /**
     * Balanced giant-step combine over @p len (a power of two)
     * consecutive blocks starting at @p j:
     *   f(j, len) = f(j, len/2) + x^(k len/2) * f(j + len/2, len/2).
     * The multiplier folds a pure-constant high half into a plaintext
     * multiplication — no ciphertext mult is ever spent on it.
     */
    Part
    combine(size_t j, size_t len)
    {
        if (len == 1)
            return block(j);
        const size_t half = len / 2;
        Part lo = combine(j, half);
        const Part hi = combine(j + half, half);
        if (hi.empty())
            return lo;

        giants_.insert(k_ * half);
        const ValueId y = pc_.get(k_ * half);
        ValueId hi_times;
        if (hi.value != kNoValue) {
            const ValueId folded =
                hi.constant != 0
                    ? b_.addPlain(hi.value, constant(hi.constant))
                    : hi.value;
            hi_times = b_.mult(folded, y);
        } else {
            hi_times = hi.constant == 1
                           ? y
                           : b_.multPlain(y, constant(hi.constant));
        }
        lo.value = lo.value == kNoValue ? hi_times
                                        : b_.add(lo.value, hi_times);
        return lo;
    }

    compiler::Circuit
    finish(EvalStrategy strategy, size_t baby_step, PlanInfo *info)
    {
        compiler::Circuit circuit = b_.build();
        if (info != nullptr) {
            info->strategy = strategy;
            info->degree = static_cast<int>(coeffs_.size()) - 1;
            info->baby_step = baby_step;
            info->giant_count = giants_.size();
            info->non_scalar_mults =
                compiler::nonScalarMultCount(circuit);
            info->mult_depth = compiler::multiplicativeDepth(circuit);
            info->op_count = circuit.opCount();
        }
        return circuit;
    }

    const fv::BatchEncoder &encoder_;
    std::span<const uint64_t> coeffs_;
    CircuitBuilder b_;
    ValueId x_;
    PowerCache pc_;
    size_t k_ = 0;
    std::set<size_t> giants_;
};

} // namespace

compiler::Circuit
PolynomialEvaluator::circuit(EvalStrategy strategy) const
{
    CircuitLowering lowering(encoder_, coeffs_);
    return strategy == EvalStrategy::kHorner
               ? lowering.horner(nullptr)
               : lowering.patersonStockmeyer(nullptr);
}

PlanInfo
PolynomialEvaluator::plan(EvalStrategy strategy) const
{
    PlanInfo info;
    CircuitLowering lowering(encoder_, coeffs_);
    if (strategy == EvalStrategy::kHorner)
        lowering.horner(&info);
    else
        lowering.patersonStockmeyer(&info);
    return info;
}

uint64_t
PolynomialEvaluator::reference(uint64_t x) const
{
    const uint64_t t = params_->plainModulus();
    x %= t;
    uint64_t acc = 0;
    for (size_t i = coeffs_.size(); i-- > 0;)
        acc = (mp::mulMod64(acc, x, t) + coeffs_[i]) % t;
    return acc;
}

std::vector<uint64_t>
PolynomialEvaluator::reference(std::span<const uint64_t> xs) const
{
    std::vector<uint64_t> out;
    out.reserve(xs.size());
    for (uint64_t x : xs)
        out.push_back(reference(x));
    return out;
}

std::vector<uint64_t>
interpolateOnRange(std::span<const uint64_t> points, uint64_t t)
{
    const size_t m = points.size();
    fatalIf(m == 0, "cannot interpolate zero points");
    fatalIf(t <= m, "plain modulus ", t, " too small for ", m,
            " interpolation nodes");
    // Fermat inversion below requires a prime field.
    fatalIf(!mp::isPrime(t), "interpolation needs a prime plain "
                             "modulus, got ", t);
    const auto sub = [t](uint64_t a, uint64_t b) {
        return (a + t - b % t) % t;
    };

    // N(x) = prod_j (x - j), degree m — built once; each Lagrange
    // basis is N / (x - i) by synthetic division, scaled by
    // 1 / prod_{j != i} (i - j).
    std::vector<uint64_t> n_coeffs(m + 1, 0);
    n_coeffs[0] = 1;
    for (size_t j = 0; j < m; ++j) {
        // multiply by (x - j): shift up, subtract j * previous.
        for (size_t c = j + 1; c-- > 0;) {
            n_coeffs[c + 1] = n_coeffs[c];
        }
        n_coeffs[0] = 0;
        for (size_t c = 0; c <= j; ++c) {
            n_coeffs[c] = sub(
                n_coeffs[c], mp::mulMod64(j % t, n_coeffs[c + 1], t));
        }
    }

    std::vector<uint64_t> result(m, 0);
    std::vector<uint64_t> q(m, 0);
    for (size_t i = 0; i < m; ++i) {
        // Synthetic division N / (x - i): exact since N(i) = 0.
        uint64_t carry = 0;
        for (size_t c = m + 1; c-- > 1;) {
            carry = (n_coeffs[c] + mp::mulMod64(carry, i % t, t)) % t;
            q[c - 1] = carry;
        }
        uint64_t denom = 1;
        for (size_t j = 0; j < m; ++j) {
            if (j != i)
                denom = mp::mulMod64(denom, sub(i % t, j % t), t);
        }
        const uint64_t scale = mp::mulMod64(
            points[i] % t, mp::powMod64(denom, t - 2, t), t);
        for (size_t c = 0; c < m; ++c)
            result[c] =
                (result[c] + mp::mulMod64(q[c], scale, t)) % t;
    }
    return result;
}

} // namespace heat::poly
