#include "linalg/linalg.h"

#include <utility>

#include "common/panic.h"
#include "fv/galois.h"
#include "mp/primality.h"

namespace heat::linalg {

fv::Plaintext
encodeSlots(const fv::BatchEncoder &encoder,
            std::span<const uint64_t> values)
{
    fatalIf(values.size() > encoder.slotCount(), "vector of ",
            values.size(), " entries exceeds the ",
            encoder.slotCount(), " batching slots");
    std::vector<uint64_t> slots(values.begin(), values.end());
    return encoder.encode(slots);
}

RotationLayout::RotationLayout(const fv::BatchEncoder &encoder)
{
    const size_t n = encoder.slotCount();
    columns_ = n / 2;
    // Walk the rotate-by-1 slot permutation: since perm_i = perm_1^i,
    // assigning ascending columns along each of its two cycles makes
    // col(perm_1[s]) = col(s) + 1 by construction, and therefore
    // col(perm_i[s]) = col(s) + i for every rotation amount.
    const std::vector<size_t> perm = encoder.slotPermutation(
        fv::galoisElementForStep(1, n));
    column_.assign(n, n);
    row0_slot_.resize(columns_);
    size_t row = 0;
    for (size_t start = 0; start < n; ++start) {
        if (column_[start] != n)
            continue;
        panicIf(row >= 2, "rotation subgroup has more than two orbits");
        size_t slot = start;
        size_t col = 0;
        do {
            column_[slot] = col;
            if (row == 0)
                row0_slot_[col] = slot;
            slot = perm[slot];
            ++col;
        } while (slot != start);
        panicIf(col != columns_, "rotation orbit of length ", col,
                " (expected ", columns_, ")");
        ++row;
    }
}

std::vector<uint64_t>
RotationLayout::replicate(std::span<const uint64_t> values) const
{
    fatalIf(values.empty(), "cannot replicate an empty vector");
    fatalIf(values.size() > columns_, "vector of ", values.size(),
            " entries exceeds the ", columns_, " rotation columns");
    // Replication is only well defined when the period divides the row
    // length: otherwise the wrap-around seam breaks the "rotate by i
    // aligns v[(c+i) mod d] with column c" property every consumer
    // relies on, silently masking a caller size mismatch.
    fatalIf(columns_ % values.size() != 0, "vector of ", values.size(),
            " entries does not divide the ", columns_,
            " rotation columns; pad it to a divisor of the row length");
    std::vector<uint64_t> slots(column_.size());
    for (size_t s = 0; s < slots.size(); ++s)
        slots[s] = values[column_[s] % values.size()];
    return slots;
}

compiler::Circuit
totalSumCircuit()
{
    compiler::CircuitBuilder b;
    b.output(b.rotateSum(b.input()));
    return b.build();
}

CompiledPrimitive::CompiledPrimitive(
    std::shared_ptr<const fv::FvParams> params)
    : params_(params), encoder_(params)
{
}

std::vector<uint32_t>
CompiledPrimitive::requiredGaloisElements() const
{
    return compiler::requiredGaloisElements(circuit_,
                                            params_->degree());
}

std::shared_ptr<const compiler::CompiledCircuit>
CompiledPrimitive::compile(const compiler::CompilerOptions &options) const
{
    if (compiled_ == nullptr ||
        !(compiled_options_.hw == options.hw) ||
        compiled_options_.hoist_rotations != options.hoist_rotations ||
        compiled_options_.noise_check != options.noise_check) {
        compiled_ = std::make_shared<const compiler::CompiledCircuit>(
            compiler::compileCircuit(params_, circuit_, options));
        compiled_options_ = options;
    }
    return compiled_;
}

std::future<std::vector<fv::Ciphertext>>
CompiledPrimitive::submitInputs(service::ExecutionService &service,
                                std::vector<fv::Ciphertext> inputs) const
{
    compiler::CompilerOptions options;
    options.hw = service.config().hw;
    return service.submitCompiled(compile(options), std::move(inputs));
}

// --- InnerProduct ----------------------------------------------------------

InnerProduct::InnerProduct(std::shared_ptr<const fv::FvParams> params)
    : CompiledPrimitive(std::move(params))
{
    compiler::CircuitBuilder b;
    const compiler::ValueId a = b.input();
    const compiler::ValueId v = b.input();
    b.output(b.rotateSum(b.mult(a, v)));
    circuit_ = b.build();
}

fv::Plaintext
InnerProduct::encodeVector(std::span<const uint64_t> values) const
{
    return encodeSlots(encoder_, values);
}

uint64_t
InnerProduct::decodeResult(const fv::Plaintext &plain) const
{
    return encoder_.decode(plain)[0];
}

uint64_t
InnerProduct::reference(std::span<const uint64_t> a,
                        std::span<const uint64_t> b) const
{
    panicIf(a.size() != b.size(), "inner-product length mismatch");
    const uint64_t t = params_->plainModulus();
    uint64_t sum = 0;
    for (size_t i = 0; i < a.size(); ++i)
        sum = (sum + mp::mulMod64(a[i] % t, b[i] % t, t)) % t;
    return sum;
}

std::future<std::vector<fv::Ciphertext>>
InnerProduct::submit(service::ExecutionService &service, fv::Ciphertext a,
                     fv::Ciphertext b) const
{
    std::vector<fv::Ciphertext> inputs;
    inputs.push_back(std::move(a));
    inputs.push_back(std::move(b));
    return submitInputs(service, std::move(inputs));
}

// --- MatVec ----------------------------------------------------------------

MatVec::MatVec(std::shared_ptr<const fv::FvParams> params,
               std::vector<std::vector<uint64_t>> matrix)
    : CompiledPrimitive(std::move(params)), matrix_(std::move(matrix)),
      dim_(matrix_.size()), layout_(encoder_)
{
    const size_t n = params_->degree();
    fatalIf(dim_ == 0, "matrix is empty");
    for (const auto &row : matrix_)
        fatalIf(row.size() != dim_, "matrix must be square (", dim_,
                " x ", dim_, ")");
    fatalIf((n / 2) % dim_ != 0, "matrix dimension ", dim_,
            " must divide the rotation row length ", n / 2);

    // Diagonal method in the layout's column coordinates: the slot at
    // column c of the rotation by i holds v[(c+i) mod d], so the i-th
    // plaintext diagonal pairs matrix row (c mod d) with matrix
    // column ((c+i) mod d) — and across i = 0..d-1 that sweeps every
    // entry of the row exactly once (d divides the orbit length n/2).
    const uint64_t t = params_->plainModulus();
    compiler::CircuitBuilder b;
    const compiler::ValueId v = b.input();
    compiler::ValueId acc = compiler::kNoValue;
    std::vector<uint64_t> diag(n);
    for (size_t i = 0; i < dim_; ++i) {
        for (size_t s = 0; s < n; ++s) {
            const size_t c = layout_.column(s);
            diag[s] = matrix_[c % dim_][(c + i) % dim_] % t;
        }
        const compiler::ValueId rotated =
            i == 0 ? v : b.rotate(v, static_cast<int32_t>(i));
        const compiler::ValueId term =
            b.multPlain(rotated, encoder_.encode(diag));
        acc = i == 0 ? term : b.add(acc, term);
    }
    b.output(acc);
    circuit_ = b.build();
}

fv::Plaintext
MatVec::encodeVector(std::span<const uint64_t> values) const
{
    fatalIf(values.size() != dim_, "vector length ", values.size(),
            " does not match the matrix dimension ", dim_);
    return encoder_.encode(layout_.replicate(values));
}

std::vector<uint64_t>
MatVec::decodeResult(const fv::Plaintext &plain) const
{
    const std::vector<uint64_t> slots = encoder_.decode(plain);
    std::vector<uint64_t> out(dim_);
    for (size_t r = 0; r < dim_; ++r)
        out[r] = slots[layout_.slotAt(r)];
    return out;
}

std::vector<uint64_t>
MatVec::reference(std::span<const uint64_t> values) const
{
    panicIf(values.size() != dim_, "matvec length mismatch");
    const uint64_t t = params_->plainModulus();
    std::vector<uint64_t> out(dim_, 0);
    for (size_t r = 0; r < dim_; ++r) {
        for (size_t c = 0; c < dim_; ++c)
            out[r] = (out[r] + mp::mulMod64(matrix_[r][c] % t,
                                            values[c] % t, t)) %
                     t;
    }
    return out;
}

std::future<std::vector<fv::Ciphertext>>
MatVec::submit(service::ExecutionService &service, fv::Ciphertext v) const
{
    std::vector<fv::Ciphertext> inputs;
    inputs.push_back(std::move(v));
    return submitInputs(service, std::move(inputs));
}

} // namespace heat::linalg
