/**
 * @file
 * heat::linalg — batched encrypted linear algebra on the hardware
 * automorphism datapath.
 *
 * The primitives here (total sum, inner product, matrix-vector via the
 * diagonal method) are the canonical rotation-based FHE workloads:
 * HEAX identifies key-switching/rotation as the dominant kernel of
 * real batched workloads, and FAME demonstrates diagonal-method
 * matrix-vector products as the standard FPGA scenario. Every
 * primitive is expressed as a compiler::Circuit whose Rotate/RotateSum
 * nodes lower onto the coprocessor's kAutomorph datapath, with
 * HEAX-style hoisting sharing the key-switch decompose across all
 * rotations of one ciphertext — compile once, submit many through
 * service::ExecutionService.
 *
 * Data layout: one ciphertext carries n batching slots (BatchEncoder,
 * physical slot order = the NTT's bit-reversed order). The rotation
 * subgroup acts on the slots in two orbits of length n/2 (the "rows");
 * RotationLayout assigns each slot a logical *column* coordinate along
 * its orbit so that rotate-by-1 advances every column by exactly one.
 * Vectors for MatVec are packed replicated in column coordinates —
 * the slot at column c holds v[c mod d] — so the rotation by i aligns
 * v[(c+i) mod d] with column c in every period, which is what lets a
 * d-dimensional product use d-1 slot rotations. d must divide n/2.
 * InnerProduct packs plainly (zero-padded) and sums across all slots.
 */

#ifndef HEAT_LINALG_LINALG_H
#define HEAT_LINALG_LINALG_H

#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "compiler/compiler.h"
#include "fv/batch_encoder.h"
#include "fv/params.h"
#include "service/service.h"

namespace heat::linalg {

/** Slot-pack @p values (mod t), zero-padding the remaining slots. */
fv::Plaintext encodeSlots(const fv::BatchEncoder &encoder,
                          std::span<const uint64_t> values);

/**
 * Logical coordinates of the rotation action. The batching slots are
 * stored in the NTT's bit-reversed order, so a rotation by one does
 * NOT shift physical slot indices by one; it advances each slot along
 * its orbit of the rotation subgroup. RotationLayout walks the
 * rotate-by-1 slot permutation once and assigns every slot a (row,
 * column) pair such that rotate(ct, i) moves the value at column
 * c + i to column c in both rows — the coordinate system in which the
 * diagonal method is literally diagonal.
 */
class RotationLayout
{
  public:
    explicit RotationLayout(const fv::BatchEncoder &encoder);

    /** @return columns per row (n/2). */
    size_t columns() const { return columns_; }

    /** @return the column coordinate of physical slot @p slot. */
    size_t column(size_t slot) const { return column_[slot]; }

    /** @return the row-0 physical slot at column @p column. */
    size_t slotAt(size_t column) const { return row0_slot_[column]; }

    /** Pack @p values replicated across both rows with period
     *  values.size(): the slot at column c holds values[c mod dim].
     *  The period must divide the row length (columns()) — anything
     *  else would wrap unevenly at the row seam and break the
     *  rotation-alignment property, so it throws FatalError. */
    std::vector<uint64_t> replicate(
        std::span<const uint64_t> values) const;

  private:
    size_t columns_;
    /** Column coordinate per physical slot. */
    std::vector<size_t> column_;
    /** Row-0 physical slot per column. */
    std::vector<size_t> row0_slot_;
};

/** @return the rotate-and-add total-sum circuit: one input, one
 *  output whose every slot holds the sum of all input slots. */
compiler::Circuit totalSumCircuit();

/**
 * Common machinery of the compiled linalg primitives: a fixed circuit,
 * its Galois-element requirements, and a compile-once cache keyed by
 * the target hardware configuration. Not thread-safe during
 * compilation — compile() before sharing across threads.
 */
class CompiledPrimitive
{
  public:
    virtual ~CompiledPrimitive() = default;

    /** @return the circuit this primitive lowers. */
    const compiler::Circuit &circuit() const { return circuit_; }

    /** @return the Galois elements whose key-switching keys the
     *  executing coprocessor (or service) must hold — pass them to
     *  fv::KeyGenerator::generateGaloisKeys. */
    std::vector<uint32_t> requiredGaloisElements() const;

    /**
     * Lower the circuit for @p options (cached: recompiles only when
     * the hardware configuration changes). The returned value is
     * shareable across any number of submissions and workers.
     */
    std::shared_ptr<const compiler::CompiledCircuit> compile(
        const compiler::CompilerOptions &options = {}) const;

  protected:
    explicit CompiledPrimitive(
        std::shared_ptr<const fv::FvParams> params);

    /** Submit @p inputs through the service's fused circuit path,
     *  compiling for the service's hardware configuration. */
    std::future<std::vector<fv::Ciphertext>> submitInputs(
        service::ExecutionService &service,
        std::vector<fv::Ciphertext> inputs) const;

    std::shared_ptr<const fv::FvParams> params_;
    fv::BatchEncoder encoder_;
    compiler::Circuit circuit_;

  private:
    mutable std::shared_ptr<const compiler::CompiledCircuit> compiled_;
    /** Options the cache entry was compiled with. */
    mutable compiler::CompilerOptions compiled_options_;
};

/**
 * Batched encrypted inner product: <a, b> via slot-wise multiply plus
 * rotate-and-add. Vectors are zero-padded to the full slot count;
 * after evaluation every slot of the result holds the inner product
 * modulo t.
 */
class InnerProduct : public CompiledPrimitive
{
  public:
    explicit InnerProduct(std::shared_ptr<const fv::FvParams> params);

    /** @return slots available for vector entries. */
    size_t length() const { return encoder_.slotCount(); }

    /** Pack one operand vector (zero-padded). */
    fv::Plaintext encodeVector(std::span<const uint64_t> values) const;

    /** @return the inner product from a decrypted result (slot 0). */
    uint64_t decodeResult(const fv::Plaintext &plain) const;

    /** Plaintext reference: <a, b> mod t. */
    uint64_t reference(std::span<const uint64_t> a,
                       std::span<const uint64_t> b) const;

    /** Fused-circuit submission (compile once, submit many). */
    std::future<std::vector<fv::Ciphertext>> submit(
        service::ExecutionService &service, fv::Ciphertext a,
        fv::Ciphertext b) const;
};

/**
 * Encrypted matrix-vector product by the diagonal method
 * (Halevi-Shoup): Mv = sum_{i=0}^{d-1} diag_i * rot_i(v), where
 * diag_i is a plaintext generalized diagonal of M and rot_i rotates
 * the replicated-packed encrypted vector by i slots. The d-1 rotations
 * all act on the input ciphertext, so the compiler hoists them onto
 * one shared key-switch decompose. The matrix is public (server-side);
 * only the vector is encrypted.
 */
class MatVec : public CompiledPrimitive
{
  public:
    /**
     * @param params parameter set (plain modulus must support
     *        batching).
     * @param matrix square d x d matrix, d dividing n/2; entries are
     *        reduced modulo t.
     */
    MatVec(std::shared_ptr<const fv::FvParams> params,
           std::vector<std::vector<uint64_t>> matrix);

    /** @return the matrix dimension d. */
    size_t dimension() const { return dim_; }

    /** Pack a d-entry vector replicated across all slots. */
    fv::Plaintext encodeVector(std::span<const uint64_t> values) const;

    /** @return the d result entries from a decrypted product. */
    std::vector<uint64_t> decodeResult(const fv::Plaintext &plain) const;

    /** Plaintext reference: M v mod t. */
    std::vector<uint64_t> reference(
        std::span<const uint64_t> values) const;

    /** Fused-circuit submission (compile once, submit many). */
    std::future<std::vector<fv::Ciphertext>> submit(
        service::ExecutionService &service, fv::Ciphertext v) const;

  private:
    std::vector<std::vector<uint64_t>> matrix_;
    size_t dim_;
    RotationLayout layout_;
};

} // namespace heat::linalg

#endif // HEAT_LINALG_LINALG_H
