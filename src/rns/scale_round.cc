#include "rns/scale_round.h"

#include "common/bit_util.h"
#include "common/panic.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace heat::rns {

ScaleRounder::ScaleRounder(const RnsBase &q_base, const RnsBase &p_base,
                           uint64_t t)
    : q_(q_base), p_(p_base), full_(RnsBase::concat(q_base, p_base)), t_(t)
{
    fatalIf(t == 0, "plaintext modulus must be positive");

    const mp::BigInt t_big = mp::BigInt::fromUint64(t);
    const mp::BigInt &p_prod = p_.product();

    rfrac_.resize(q_.size());
    imod_.assign(q_.size(), std::vector<uint64_t>(p_.size(), 0));
    for (size_t i = 0; i < q_.size(); ++i) {
        const uint64_t q_i = q_.modulus(i).value();
        // Q~_i = (Q / q_i)^{-1} mod q_i, taken from the full base.
        const uint64_t qtilde_i = full_.crtInverse(i);
        // numerator = t * Q~_i * p; constant c_i = numerator / q_i.
        mp::BigInt num = t_big * mp::BigInt::fromUint64(qtilde_i) * p_prod;
        mp::BigInt rem;
        mp::BigInt integer_part = num.divMod(
            mp::BigInt::fromUint64(q_i), rem);
        // R_i = frac = rem / q_i, stored as round(rem * 2^60 / q_i).
        mp::BigInt r_fixed =
            (rem * mp::BigInt::powerOfTwo(kFracBits) * mp::BigInt(2) +
             mp::BigInt::fromUint64(q_i)) /
            (mp::BigInt::fromUint64(q_i) * mp::BigInt(2));
        rfrac_[i] = r_fixed.toUint64();
        for (size_t j = 0; j < p_.size(); ++j)
            imod_[i][j] = integer_part.modUint64(p_.modulus(j).value());
    }

    cj_.resize(p_.size());
    for (size_t j = 0; j < p_.size(); ++j) {
        const uint64_t p_j = p_.modulus(j).value();
        const uint64_t qtilde_j = full_.crtInverse(q_.size() + j);
        mp::BigInt pstar_j = p_prod / mp::BigInt::fromUint64(p_j);
        mp::BigInt c = t_big * mp::BigInt::fromUint64(qtilde_j) * pstar_j;
        cj_[j] = c.modUint64(p_j);
    }

    // scaleBatch runs through the sop128/reduce128 kernels when every
    // full-base residue fits a 32-bit lane and the Block-2 term count
    // (q residues + the coefficient's own p residue) fits the kernel's
    // 64-bit partial-sum headroom.
    batch_eligible_ = q_.size() + 1 <= simd::kSopMaxTerms;
    for (const auto &m : full_.moduli())
        batch_eligible_ =
            batch_eligible_ && simd::eligibleModulus(m.value());
    if (batch_eligible_) {
        wcol_.assign(p_.size(),
                     std::vector<uint64_t>(q_.size() + 1, 0));
        for (size_t j = 0; j < p_.size(); ++j) {
            for (size_t i = 0; i < q_.size(); ++i)
                wcol_[j][i] = imod_[i][j];
            wcol_[j][q_.size()] = cj_[j];
        }
    }
}

void
ScaleRounder::scale(std::span<const uint64_t> in,
                    std::span<uint64_t> out) const
{
    panicIf(in.size() != q_.size() + p_.size(), "input size mismatch");
    panicIf(out.size() != p_.size(), "output size mismatch");

    // Block 1: fractional sum-of-products. Each term is < 2^30 * 2^60 and
    // at most 48 terms accumulate: fits 128 bits.
    uint128_t sop_r = 0;
    for (size_t i = 0; i < q_.size(); ++i)
        sop_r += mulWide64(in[i], rfrac_[i]);
    const uint64_t rounded_r = static_cast<uint64_t>(
        (sop_r + (uint128_t(1) << (kFracBits - 1))) >> kFracBits);

    for (size_t j = 0; j < p_.size(); ++j) {
        const Modulus &p_j = p_.modulus(j);
        // Block 2: integer sum-of-products modulo p_j.
        uint128_t acc = 0;
        for (size_t i = 0; i < q_.size(); ++i)
            acc += mulWide64(in[i], imod_[i][j]);
        // Block 3: contribution of x's own p-base residue.
        acc += mulWide64(in[q_.size() + j], cj_[j]);
        // Block 4: add the rounded fractional part and reduce.
        acc += rounded_r;
        out[j] = p_j.reduce128(acc);
    }
}

void
ScaleRounder::scaleBatch(const uint64_t *const *in_rows,
                         uint64_t *const *out_rows, size_t count) const
{
    OBS_SPAN("rns.scale_batch", "kernel");
    const size_t kq = q_.size();
    const size_t kp = p_.size();
    if (!batch_eligible_) {
        std::vector<uint64_t> in(full_.size());
        std::vector<uint64_t> out(kp);
        for (size_t c = 0; c < count; ++c) {
            for (size_t i = 0; i < full_.size(); ++i)
                in[i] = in_rows[i][c];
            scale(in, out);
            for (size_t j = 0; j < kp; ++j)
                out_rows[j][c] = out[j];
        }
        return;
    }

    const simd::Kernels &k = simd::active();
    std::vector<uint64_t> lo(count), hi(count), rounded(count);

    // Block 1: fractional sum-of-products and the round (shared by all
    // output primes).
    k.sop128(in_rows, rfrac_.data(), kq, count, lo.data(), hi.data());
    k.round_shift128(lo.data(), hi.data(), count, kFracBits,
                     rounded.data());

    // Blocks 2-4 per output prime, on whole rows: the q-base rows plus
    // the coefficient's own p_j row, weighted by the precomputed column.
    const uint64_t *rows[simd::kSopMaxTerms];
    for (size_t i = 0; i < kq; ++i)
        rows[i] = in_rows[i];
    for (size_t j = 0; j < kp; ++j) {
        rows[kq] = in_rows[kq + j];
        k.sop128(rows, wcol_[j].data(), kq + 1, count, lo.data(),
                 hi.data());
        k.add128_64(lo.data(), hi.data(), rounded.data(), count);
        k.reduce128_mod(lo.data(), hi.data(), out_rows[j], count,
                        p_.modulus(j));
    }
}

void
ScaleRounder::scaleExact(std::span<const uint64_t> in,
                         std::span<uint64_t> out) const
{
    panicIf(in.size() != full_.size(), "input size mismatch");
    panicIf(out.size() != p_.size(), "output size mismatch");

    std::vector<uint64_t> residues(in.begin(), in.end());
    mp::BigInt x = full_.composeCentered(residues);
    const mp::BigInt q_prod = q_.product();
    // Round half up: floor((2*t*x + q) / (2*q)) — floor division, which
    // for negative numerators needs an explicit adjustment because BigInt
    // division truncates toward zero.
    mp::BigInt numer = mp::BigInt::fromUint64(t_) * x * mp::BigInt(2) +
                       q_prod;
    mp::BigInt denom = q_prod * mp::BigInt(2);
    mp::BigInt rem;
    mp::BigInt y = numer.divMod(denom, rem);
    if (rem.isNegative())
        y -= mp::BigInt(1);

    for (size_t j = 0; j < p_.size(); ++j) {
        mp::BigInt p_j(static_cast<int64_t>(p_.modulus(j).value()));
        out[j] = y.mod(p_j).toUint64();
    }
}

} // namespace heat::rns
