#include "rns/prime_gen.h"

#include "common/bit_util.h"
#include "common/panic.h"
#include "mp/primality.h"

namespace heat::rns {

std::vector<uint64_t>
generateNttPrimes(int bits, size_t degree, size_t count)
{
    fatalIf(bits < 4 || bits > 61, "prime width out of range");
    fatalIf(!isPowerOfTwo(degree), "degree must be a power of two");

    const uint64_t two_n = 2 * static_cast<uint64_t>(degree);
    const uint64_t upper = uint64_t(1) << bits;
    const uint64_t lower = uint64_t(1) << (bits - 1);

    std::vector<uint64_t> primes;
    // Largest candidate < 2^bits congruent to 1 mod 2n.
    uint64_t candidate = ((upper - 2) / two_n) * two_n + 1;
    while (primes.size() < count && candidate > lower) {
        if (mp::isPrime(candidate))
            primes.push_back(candidate);
        candidate -= two_n;
    }
    fatalIf(primes.size() < count, "not enough ", bits,
            "-bit NTT primes for degree ", degree);
    return primes;
}

uint64_t
findPrimitiveRoot(uint64_t q, size_t degree)
{
    const uint64_t two_n = 2 * static_cast<uint64_t>(degree);
    fatalIf((q - 1) % two_n != 0, "prime is not NTT friendly");
    const uint64_t cofactor = (q - 1) / two_n;

    // psi = x^((q-1)/2n) is a 2n-th root of unity; it is primitive iff
    // psi^n = -1. Search deterministically over small candidates.
    for (uint64_t x = 2; x < q; ++x) {
        uint64_t psi = mp::powMod64(x, cofactor, q);
        if (psi == 1)
            continue;
        if (mp::powMod64(psi, degree, q) == q - 1)
            return psi;
    }
    panic("no primitive root found for q=", q);
}

} // namespace heat::rns
