#include "rns/base_convert.h"

#include "common/bit_util.h"
#include "common/panic.h"

namespace heat::rns {

FastBaseConverter::FastBaseConverter(const RnsBase &from, const RnsBase &to)
    : from_(from), to_(to)
{
    // Common fixed-point scale for all reciprocals. For 30-bit primes this
    // is 89 fractional bits: the top 29 are zero, leaving 60 significant
    // bits so each reciprocal fits one 64-bit word (paper Sec. V-B2).
    int min_bits = 64;
    for (const auto &m : from_.moduli())
        min_bits = std::min(min_bits, m.bits());
    frac_bits_ = min_bits - 1 + 60;

    recip_.resize(from_.size());
    for (size_t i = 0; i < from_.size(); ++i) {
        mp::BigInt scaled = mp::BigInt::powerOfTwo(frac_bits_);
        mp::BigInt q_i = mp::BigInt::fromUint64(from_.modulus(i).value());
        // round(2^frac / q_i)
        mp::BigInt r = (scaled * mp::BigInt(2) + q_i) / (q_i * mp::BigInt(2));
        recip_[i] = r.toUint64();
    }

    qstar_mod_.assign(from_.size(),
                      std::vector<uint64_t>(to_.size(), 0));
    q_mod_.resize(to_.size());
    for (size_t j = 0; j < to_.size(); ++j) {
        const uint64_t b_j = to_.modulus(j).value();
        q_mod_[j] = from_.product().modUint64(b_j);
        for (size_t i = 0; i < from_.size(); ++i)
            qstar_mod_[i][j] = from_.puncturedProduct(i).modUint64(b_j);
    }
}

void
FastBaseConverter::computeLambdas(std::span<const uint64_t> in,
                                  std::vector<uint64_t> &lambda) const
{
    panicIf(in.size() != from_.size(), "input size mismatch");
    lambda.resize(from_.size());
    for (size_t i = 0; i < from_.size(); ++i)
        lambda[i] = from_.modulus(i).mul(in[i], from_.crtInverse(i));
}

uint64_t
FastBaseConverter::roundedQuotient(std::span<const uint64_t> lambda) const
{
    // v' = round(sum lambda_i / q_i) evaluated with 60-significant-bit
    // fixed-point reciprocals. lambda_i < 2^30 and recip_i < 2^61, so the
    // accumulated sum stays far below 2^128 even for 48-prime bases.
    uint128_t acc = 0;
    for (size_t i = 0; i < lambda.size(); ++i)
        acc += mulWide64(lambda[i], recip_[i]);
    acc += uint128_t(1) << (frac_bits_ - 1);
    return static_cast<uint64_t>(acc >> frac_bits_);
}

void
FastBaseConverter::convert(std::span<const uint64_t> in,
                           std::span<uint64_t> out) const
{
    panicIf(out.size() != to_.size(), "output size mismatch");
    std::vector<uint64_t> lambda;
    computeLambdas(in, lambda);
    const uint64_t v = roundedQuotient(lambda);

    for (size_t j = 0; j < to_.size(); ++j) {
        const Modulus &b_j = to_.modulus(j);
        // sum_i lambda_i * (q*_i mod b_j): each product is < 2^60 and at
        // most 48 terms accumulate, so a 128-bit accumulator suffices.
        uint128_t acc = 0;
        for (size_t i = 0; i < from_.size(); ++i)
            acc += mulWide64(lambda[i], qstar_mod_[i][j]);
        uint64_t s = b_j.reduce128(acc);
        uint64_t corr = b_j.mul(b_j.reduce(v), q_mod_[j]);
        out[j] = b_j.sub(s, corr);
    }
}

void
FastBaseConverter::convertExact(std::span<const uint64_t> in,
                                std::span<uint64_t> out) const
{
    panicIf(in.size() != from_.size(), "input size mismatch");
    panicIf(out.size() != to_.size(), "output size mismatch");
    std::vector<uint64_t> residues(in.begin(), in.end());
    mp::BigInt x = from_.composeCentered(residues);
    for (size_t j = 0; j < to_.size(); ++j) {
        mp::BigInt b_j(static_cast<int64_t>(to_.modulus(j).value()));
        out[j] = x.mod(b_j).toUint64();
    }
}

} // namespace heat::rns
