#include "rns/base_convert.h"

#include "common/bit_util.h"
#include "common/panic.h"
#include "obs/trace.h"
#include "simd/simd.h"

namespace heat::rns {

FastBaseConverter::FastBaseConverter(const RnsBase &from, const RnsBase &to)
    : from_(from), to_(to)
{
    // Common fixed-point scale for all reciprocals. For 30-bit primes this
    // is 89 fractional bits: the top 29 are zero, leaving 60 significant
    // bits so each reciprocal fits one 64-bit word (paper Sec. V-B2).
    int min_bits = 64;
    for (const auto &m : from_.moduli())
        min_bits = std::min(min_bits, m.bits());
    frac_bits_ = min_bits - 1 + 60;

    recip_.resize(from_.size());
    for (size_t i = 0; i < from_.size(); ++i) {
        mp::BigInt scaled = mp::BigInt::powerOfTwo(frac_bits_);
        mp::BigInt q_i = mp::BigInt::fromUint64(from_.modulus(i).value());
        // round(2^frac / q_i)
        mp::BigInt r = (scaled * mp::BigInt(2) + q_i) / (q_i * mp::BigInt(2));
        recip_[i] = r.toUint64();
    }

    qstar_mod_.assign(from_.size(),
                      std::vector<uint64_t>(to_.size(), 0));
    q_mod_.resize(to_.size());
    for (size_t j = 0; j < to_.size(); ++j) {
        const uint64_t b_j = to_.modulus(j).value();
        q_mod_[j] = from_.product().modUint64(b_j);
        for (size_t i = 0; i < from_.size(); ++i)
            qstar_mod_[i][j] = from_.puncturedProduct(i).modUint64(b_j);
    }

    // convertBatch eligibility: the lambda rows feed the sop128 kernel,
    // so every source residue must fit a 32-bit lane and the term count
    // the kernel's partial-sum headroom.
    batch_eligible_ = from_.size() <= simd::kSopMaxTerms;
    for (const auto &m : from_.moduli())
        batch_eligible_ =
            batch_eligible_ && simd::eligibleModulus(m.value());
    if (batch_eligible_) {
        crt_inv_shoup_.resize(from_.size());
        for (size_t i = 0; i < from_.size(); ++i)
            crt_inv_shoup_[i] =
                from_.modulus(i).shoupPrecompute(from_.crtInverse(i));
        qstar_col_.assign(to_.size(),
                          std::vector<uint64_t>(from_.size(), 0));
        q_mod_shoup_.resize(to_.size());
        for (size_t j = 0; j < to_.size(); ++j) {
            for (size_t i = 0; i < from_.size(); ++i)
                qstar_col_[j][i] = qstar_mod_[i][j];
            q_mod_shoup_[j] =
                to_.modulus(j).shoupPrecompute(q_mod_[j]);
        }
    }
}

void
FastBaseConverter::computeLambdas(std::span<const uint64_t> in,
                                  std::vector<uint64_t> &lambda) const
{
    panicIf(in.size() != from_.size(), "input size mismatch");
    lambda.resize(from_.size());
    for (size_t i = 0; i < from_.size(); ++i)
        lambda[i] = from_.modulus(i).mul(in[i], from_.crtInverse(i));
}

uint64_t
FastBaseConverter::roundedQuotient(std::span<const uint64_t> lambda) const
{
    // v' = round(sum lambda_i / q_i) evaluated with 60-significant-bit
    // fixed-point reciprocals. lambda_i < 2^30 and recip_i < 2^61, so the
    // accumulated sum stays far below 2^128 even for 48-prime bases.
    uint128_t acc = 0;
    for (size_t i = 0; i < lambda.size(); ++i)
        acc += mulWide64(lambda[i], recip_[i]);
    acc += uint128_t(1) << (frac_bits_ - 1);
    return static_cast<uint64_t>(acc >> frac_bits_);
}

void
FastBaseConverter::convert(std::span<const uint64_t> in,
                           std::span<uint64_t> out) const
{
    panicIf(out.size() != to_.size(), "output size mismatch");
    std::vector<uint64_t> lambda;
    computeLambdas(in, lambda);
    const uint64_t v = roundedQuotient(lambda);

    for (size_t j = 0; j < to_.size(); ++j) {
        const Modulus &b_j = to_.modulus(j);
        // sum_i lambda_i * (q*_i mod b_j): each product is < 2^60 and at
        // most 48 terms accumulate, so a 128-bit accumulator suffices.
        uint128_t acc = 0;
        for (size_t i = 0; i < from_.size(); ++i)
            acc += mulWide64(lambda[i], qstar_mod_[i][j]);
        uint64_t s = b_j.reduce128(acc);
        uint64_t corr = b_j.mul(b_j.reduce(v), q_mod_[j]);
        out[j] = b_j.sub(s, corr);
    }
}

void
FastBaseConverter::convertBatch(const uint64_t *const *in_rows,
                                uint64_t *const *out_rows,
                                size_t count) const
{
    OBS_SPAN("rns.convert_batch", "kernel");
    const size_t kq = from_.size();
    const size_t kb = to_.size();
    if (!batch_eligible_) {
        std::vector<uint64_t> in(kq);
        std::vector<uint64_t> out(kb);
        for (size_t c = 0; c < count; ++c) {
            for (size_t i = 0; i < kq; ++i)
                in[i] = in_rows[i][c];
            convert(in, out);
            for (size_t j = 0; j < kb; ++j)
                out_rows[j][c] = out[j];
        }
        return;
    }

    const simd::Kernels &k = simd::active();

    // Block 1: lambda rows (Shoup and Barrett products are both
    // canonical, so this matches computeLambdas bit for bit).
    std::vector<uint64_t> lambda_data(kq * count);
    const uint64_t *lambda_rows[simd::kSopMaxTerms];
    for (size_t i = 0; i < kq; ++i) {
        uint64_t *row = lambda_data.data() + i * count;
        k.mul_shoup_out(row, in_rows[i], count, from_.modulus(i),
                        from_.crtInverse(i), crt_inv_shoup_[i]);
        lambda_rows[i] = row;
    }

    // Blocks 3/4: the rounded quotient v' per coefficient. v' is at
    // most from_.size(), far below every destination prime.
    std::vector<uint64_t> lo(count), hi(count), v(count), corr(count);
    k.sop128(lambda_rows, recip_.data(), kq, count, lo.data(),
             hi.data());
    k.round_shift128(lo.data(), hi.data(), count, frac_bits_, v.data());

    // Block 2 + correction per destination prime.
    for (size_t j = 0; j < kb; ++j) {
        const Modulus &b_j = to_.modulus(j);
        k.sop128(lambda_rows, qstar_col_[j].data(), kq, count, lo.data(),
                 hi.data());
        k.reduce128_mod(lo.data(), hi.data(), out_rows[j], count, b_j);
        k.mul_shoup_out(corr.data(), v.data(), count, b_j, q_mod_[j],
                        q_mod_shoup_[j]);
        k.sub_mod(out_rows[j], corr.data(), count, b_j.value());
    }
}

void
FastBaseConverter::convertExact(std::span<const uint64_t> in,
                                std::span<uint64_t> out) const
{
    panicIf(in.size() != from_.size(), "input size mismatch");
    panicIf(out.size() != to_.size(), "output size mismatch");
    std::vector<uint64_t> residues(in.begin(), in.end());
    mp::BigInt x = from_.composeCentered(residues);
    for (size_t j = 0; j < to_.size(); ++j) {
        mp::BigInt b_j(static_cast<int64_t>(to_.modulus(j).value()));
        out[j] = x.mod(b_j).toUint64();
    }
}

} // namespace heat::rns
