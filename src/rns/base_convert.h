/**
 * @file
 * RNS base conversion: the Lift q->Q primitive of the paper.
 *
 * Two implementations are provided, mirroring the two coprocessor
 * architectures of Sec. IV-C:
 *
 *  - FastBaseConverter: the HPS (Halevi-Polyakov-Shoup, ePrint 2018/117)
 *    approximate-CRT method. The quotient v' = round(sum lambda_i / q_i)
 *    is evaluated in fixed point with per-prime reciprocals 1/q_i stored
 *    to 89 fractional bits (for 30-bit primes the top 29 fractional bits
 *    are zero, so a 30x60-bit multiply suffices — the paper's Block 3
 *    trick). The conversion maps x in [0, q) to its *centered*
 *    representative in (-q/2, q/2] expressed in the target base, which is
 *    exactly what FV multiplication wants.
 *
 *  - exact conversion via BigInt CRT reconstruction (the "traditional"
 *    datapath and the golden model for tests).
 */

#ifndef HEAT_RNS_BASE_CONVERT_H
#define HEAT_RNS_BASE_CONVERT_H

#include <cstdint>
#include <span>
#include <vector>

#include "rns/rns_base.h"

namespace heat::rns {

/** Converts RNS representations from one base to another (HPS method). */
class FastBaseConverter
{
  public:
    FastBaseConverter() = default;

    /**
     * Prepare conversion from @p from to @p to (bases must be coprime).
     */
    FastBaseConverter(const RnsBase &from, const RnsBase &to);

    /** @return source base. */
    const RnsBase &fromBase() const { return from_; }

    /** @return destination base. */
    const RnsBase &toBase() const { return to_; }

    /**
     * Compute lambda_i = [x_i * q~_i] mod q_i for one coefficient; this is
     * the paper's Lift Block 1.
     *
     * @param in residues of x in the source base.
     * @param lambda receives the lambda values (resized to from.size()).
     */
    void computeLambdas(std::span<const uint64_t> in,
                        std::vector<uint64_t> &lambda) const;

    /**
     * Compute the rounded quotient v' = round(sum lambda_i / q_i) using
     * the fixed-point reciprocal table; the paper's Lift Block 3/4 input.
     */
    uint64_t roundedQuotient(std::span<const uint64_t> lambda) const;

    /**
     * Convert one coefficient. Output residues represent the centered
     * value of x in (-q/2, q/2] modulo each destination prime.
     *
     * @param in residues in the source base (size from.size()).
     * @param out receives residues in the destination base.
     */
    void convert(std::span<const uint64_t> in,
                 std::span<uint64_t> out) const;

    /**
     * Convert a block of @p count coefficients at once.
     *
     * @param in_rows fromBase().size() pointers, one per source residue
     *                row of count values (RnsPoly residue-major layout).
     * @param out_rows toBase().size() pointers receiving count values.
     *
     * Bit-identical to count calls of convert(); uses the dispatched
     * SIMD kernels when every source modulus fits the lane bound and
     * the base fits the 128-bit sum-of-products term budget, else a
     * per-coefficient gather/convert/scatter loop.
     */
    void convertBatch(const uint64_t *const *in_rows,
                      uint64_t *const *out_rows, size_t count) const;

    /**
     * Exact reference conversion (BigInt CRT; centered). Used by the
     * traditional-CRT architecture model and as the test oracle.
     */
    void convertExact(std::span<const uint64_t> in,
                      std::span<uint64_t> out) const;

    /** Fixed-point fractional bits used for the 1/q_i reciprocals. */
    int reciprocalFracBits() const { return frac_bits_; }

    /** @return reciprocal table entry round(2^frac_bits / q_i). */
    uint64_t reciprocal(size_t i) const { return recip_[i]; }

  private:
    RnsBase from_;
    RnsBase to_;
    int frac_bits_ = 0;
    /** recip_[i] = round(2^frac_bits / q_i). */
    std::vector<uint64_t> recip_;
    /** qstar_mod_[i][j] = (q / q_i) mod b_j. */
    std::vector<std::vector<uint64_t>> qstar_mod_;
    /** q_mod_[j] = q mod b_j. */
    std::vector<uint64_t> q_mod_;

    /** True when convertBatch may use the SIMD kernels. */
    bool batch_eligible_ = false;
    /** crt_inv_shoup_[i] = shoupPrecompute(q~_i) for the lambda rows. */
    std::vector<uint64_t> crt_inv_shoup_;
    /** qstar_col_[j] = {qstar_mod_[0][j], ..., qstar_mod_[kq-1][j]}. */
    std::vector<std::vector<uint64_t>> qstar_col_;
    /** q_mod_shoup_[j] = shoupPrecompute(q_mod_[j]) for v-corrections. */
    std::vector<uint64_t> q_mod_shoup_;
};

} // namespace heat::rns

#endif // HEAT_RNS_BASE_CONVERT_H
