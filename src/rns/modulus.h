/**
 * @file
 * A word-sized prime modulus with precomputed reduction constants.
 *
 * The paper's RNS bases are built from 30-bit primes so that a 30x30-bit
 * product fits the FPGA DSP datapath and a 60-bit product can be reduced
 * with the sliding-window method (Sec. V-A4). This class supports primes up
 * to 2^62 (the larger Table V parameter sets stay at 30 bits, but tests
 * exercise other widths) and offers three reduction algorithms:
 *
 *  - Barrett reduction (the classic baseline the paper rejects as too
 *    costly in hardware),
 *  - Shoup multiplication for multiplications by known constants
 *    (twiddle factors) — the software library's fast path,
 *  - the paper's sliding-window reduction with a 64-entry table of
 *    w * 2^30 mod q, fully unrolled in hardware; here it is the functional
 *    model used by the hardware simulator and verified against Barrett.
 */

#ifndef HEAT_RNS_MODULUS_H
#define HEAT_RNS_MODULUS_H

#include <array>
#include <cstdint>

#include "common/bit_util.h"

namespace heat::rns {

/** Width (bits) of the RNS primes used by the paper's parameter sets. */
constexpr int kRnsPrimeBits = 30;

/** A prime modulus with precomputed Barrett and sliding-window constants. */
class Modulus
{
  public:
    Modulus() = default;

    /** Construct from a prime @p value (2 < value < 2^62). */
    explicit Modulus(uint64_t value);

    /** @return the modulus value q. */
    uint64_t value() const { return value_; }

    /** @return bit width of q. */
    int bits() const { return bits_; }

    /** @return x mod q for any 64-bit x (Barrett reduction). */
    uint64_t reduce(uint64_t x) const;

    /** @return x mod q for a 128-bit x (two-level Barrett reduction). */
    uint64_t reduce128(uint128_t x) const;

    /** @return (a + b) mod q for a, b in [0, q). */
    uint64_t
    add(uint64_t a, uint64_t b) const
    {
        uint64_t s = a + b;
        return s >= value_ ? s - value_ : s;
    }

    /** @return (a - b) mod q for a, b in [0, q). */
    uint64_t
    sub(uint64_t a, uint64_t b) const
    {
        return a >= b ? a - b : a + value_ - b;
    }

    /** @return -a mod q for a in [0, q). */
    uint64_t
    negate(uint64_t a) const
    {
        return a == 0 ? 0 : value_ - a;
    }

    /** @return (a * b) mod q for a, b in [0, q). */
    uint64_t
    mul(uint64_t a, uint64_t b) const
    {
        return reduce128(mulWide64(a, b));
    }

    /**
     * Precompute the Shoup constant floor(w * 2^64 / q) for repeated
     * multiplications by the fixed operand @p w in [0, q).
     */
    uint64_t shoupPrecompute(uint64_t w) const;

    /**
     * Shoup modular multiplication a * w mod q where @p w_shoup was
     * produced by shoupPrecompute(w). One mulhi + one mullo + one
     * conditional subtraction; this is the software NTT's inner loop.
     */
    uint64_t
    mulShoup(uint64_t a, uint64_t w, uint64_t w_shoup) const
    {
        uint64_t quot = mulHigh64(a, w_shoup);
        uint64_t r = a * w - quot * value_;
        return r >= value_ ? r - value_ : r;
    }

    /**
     * Lazy Shoup multiplication: result in [0, 2q) without the final
     * conditional subtraction. Valid for any 64-bit @p a with w < q;
     * the Harvey-style NTT keeps intermediate values in [0, 4q) and
     * uses this in its inner loop.
     */
    uint64_t
    mulShoupLazy(uint64_t a, uint64_t w, uint64_t w_shoup) const
    {
        return a * w - mulHigh64(a, w_shoup) * value_;
    }

    /** @return (base ^ exp) mod q. */
    uint64_t pow(uint64_t base, uint64_t exp) const;

    /** @return multiplicative inverse of a mod q (a != 0, q prime). */
    uint64_t inverse(uint64_t a) const;

    /**
     * Sliding-window reduction of a value x < 2^60 (a 30x30-bit product)
     * using the 64-entry table of w * 2^30 mod q. Matches the hardware
     * datapath of Fig. 4: fold the top 6 bits repeatedly, then apply at
     * most two conditional subtractions. Only valid for 30-bit moduli.
     *
     * @param x value below 2^60.
     * @return x mod q.
     */
    uint64_t slidingWindowReduce(uint64_t x) const;

    /**
     * Number of fold iterations the unrolled sliding-window circuit needs
     * for a 60-bit input (used by the hardware resource/timing model).
     */
    static constexpr int kSlidingWindowStages = 6;

    /** @return the w * 2^30 mod q reduction table (for the HW model). */
    const std::array<uint64_t, 64> &reductionTable() const { return table_; }

    bool operator==(const Modulus &o) const { return value_ == o.value_; }
    bool operator!=(const Modulus &o) const { return value_ != o.value_; }

  private:
    uint64_t value_ = 0;
    int bits_ = 0;
    /** floor(2^64 / q) for 64-bit Barrett. */
    uint64_t barrett64_ = 0;
    /** floor(2^128 / q) as two 64-bit words (hi, lo) for 128-bit Barrett. */
    uint64_t barrett128_hi_ = 0;
    uint64_t barrett128_lo_ = 0;
    /** Sliding-window table: table_[w] = w * 2^30 mod q. */
    std::array<uint64_t, 64> table_{};
};

} // namespace heat::rns

#endif // HEAT_RNS_MODULUS_H
