/**
 * @file
 * Generation of NTT-friendly RNS primes.
 *
 * Every RNS prime must satisfy q_i = 1 (mod 2n) so that Z_{q_i} contains a
 * primitive 2n-th root of unity and the negacyclic NTT over
 * Z_{q_i}[x]/(x^n + 1) exists. The paper uses 30-bit primes; generation
 * searches downward from 2^30 so runs are deterministic and reproducible.
 */

#ifndef HEAT_RNS_PRIME_GEN_H
#define HEAT_RNS_PRIME_GEN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace heat::rns {

/**
 * Generate @p count distinct NTT-friendly primes of exactly @p bits bits
 * with prime = 1 (mod 2 * degree), searching downward from 2^bits.
 *
 * @param bits prime width in bits (e.g. 30).
 * @param degree polynomial degree n (power of two).
 * @param count number of primes to produce.
 * @return primes in decreasing order.
 */
std::vector<uint64_t> generateNttPrimes(int bits, size_t degree,
                                        size_t count);

/**
 * Find a primitive 2n-th root of unity modulo the prime @p q where
 * q = 1 (mod 2n).
 *
 * @param q NTT-friendly prime.
 * @param degree polynomial degree n (power of two).
 * @return psi with psi^(2n) = 1 and psi^n = -1 (mod q).
 */
uint64_t findPrimitiveRoot(uint64_t q, size_t degree);

} // namespace heat::rns

#endif // HEAT_RNS_PRIME_GEN_H
