/**
 * @file
 * A residue number system base: an ordered set of coprime word-sized
 * primes together with the CRT constants needed for decomposition,
 * reconstruction and fast base conversion.
 *
 * Terminology follows the paper (Sec. III-B): for base {q_0, ..., q_{k-1}}
 * with product q, the punctured products are q*_i = q / q_i and the CRT
 * inverses are q~_i = (q*_i)^{-1} mod q_i.
 */

#ifndef HEAT_RNS_RNS_BASE_H
#define HEAT_RNS_RNS_BASE_H

#include <cstdint>
#include <vector>

#include "mp/bigint.h"
#include "rns/modulus.h"

namespace heat::rns {

/** An RNS base: coprime moduli plus precomputed CRT constants. */
class RnsBase
{
  public:
    RnsBase() = default;

    /** Build a base from prime values (must be pairwise distinct). */
    explicit RnsBase(const std::vector<uint64_t> &primes);

    /** @return number of moduli k. */
    size_t size() const { return moduli_.size(); }

    /** @return the i-th modulus. */
    const Modulus &modulus(size_t i) const { return moduli_[i]; }

    /** @return all moduli. */
    const std::vector<Modulus> &moduli() const { return moduli_; }

    /** @return the base product q = prod q_i. */
    const mp::BigInt &product() const { return product_; }

    /** @return q*_i = q / q_i. */
    const mp::BigInt &puncturedProduct(size_t i) const { return qstar_[i]; }

    /** @return q~_i = (q*_i)^{-1} mod q_i. */
    uint64_t crtInverse(size_t i) const { return qtilde_[i]; }

    /**
     * Decompose a non-negative integer x < q into residues x mod q_i.
     *
     * @param value integer in [0, q).
     * @return residue vector of length size().
     */
    std::vector<uint64_t> decompose(const mp::BigInt &value) const;

    /**
     * CRT-reconstruct the unique x in [0, q) from residues
     * (the "traditional CRT" of Theorem 1).
     */
    mp::BigInt compose(const std::vector<uint64_t> &residues) const;

    /**
     * Reconstruct the centered representative in (-q/2, q/2].
     */
    mp::BigInt composeCentered(const std::vector<uint64_t> &residues) const;

    /**
     * Concatenate two bases (used to form Q = q * p from q and p).
     * Moduli must remain pairwise distinct.
     */
    static RnsBase concat(const RnsBase &a, const RnsBase &b);

    /** @return true iff @p other has the same moduli in the same order. */
    bool operator==(const RnsBase &other) const;

  private:
    std::vector<Modulus> moduli_;
    mp::BigInt product_;
    std::vector<mp::BigInt> qstar_;
    std::vector<uint64_t> qtilde_;
};

} // namespace heat::rns

#endif // HEAT_RNS_RNS_BASE_H
