#include "rns/modulus.h"

#include "common/panic.h"
#include "mp/bigint.h"
#include "mp/primality.h"

namespace heat::rns {

Modulus::Modulus(uint64_t value)
{
    fatalIf(value < 3, "Modulus must be at least 3");
    fatalIf(value >= (uint64_t(1) << 62), "Modulus must be below 2^62");
    value_ = value;
    bits_ = heat::bitLength(value);

    // floor(2^64 / q).
    barrett64_ = static_cast<uint64_t>(~uint128_t(0) / value) +
                 ((~uint128_t(0) % value) + 1 == value ? 1 : 0);
    // A cleaner exact computation via BigInt avoids the wraparound
    // subtlety above; overwrite with the exact value.
    {
        mp::BigInt ratio = mp::BigInt::powerOfTwo(64) / mp::BigInt(
            static_cast<int64_t>(value));
        barrett64_ = ratio.toUint64();
        mp::BigInt ratio128 = mp::BigInt::powerOfTwo(128) /
                              mp::BigInt(static_cast<int64_t>(value));
        barrett128_lo_ = (ratio128 % mp::BigInt::powerOfTwo(64)).toUint64();
        barrett128_hi_ = (ratio128 >> 64).toUint64();
    }

    if (bits_ <= kRnsPrimeBits) {
        for (uint64_t w = 0; w < 64; ++w)
            table_[w] = (w << kRnsPrimeBits) % value;
    }
}

uint64_t
Modulus::reduce(uint64_t x) const
{
    // Barrett: q_hat = floor(x * floor(2^64/q) / 2^64) <= floor(x/q).
    uint64_t quot = mulHigh64(x, barrett64_);
    uint64_t r = x - quot * value_;
    while (r >= value_)
        r -= value_;
    return r;
}

uint64_t
Modulus::reduce128(uint128_t x) const
{
    // Two-word Barrett reduction (SEAL-style). Let x = x1*2^64 + x0 and
    // m = floor(2^128/q) = m1*2^64 + m0. Estimate floor(x/q) by the top
    // 64 bits of (x * m) / 2^128 and correct with conditional subtracts.
    const uint64_t x0 = static_cast<uint64_t>(x);
    const uint64_t x1 = static_cast<uint64_t>(x >> 64);

    // tmp1 = floor(x0 * m1 / 2^64) + floor(x1 * m0 / 2^64) fragments,
    // carefully accumulating the cross terms of the 256-bit product.
    uint128_t cross0 = mulWide64(x0, barrett128_hi_);
    uint128_t cross1 = mulWide64(x1, barrett128_lo_);
    uint128_t mid = (mulWide64(x0, barrett128_lo_) >> 64) + cross0 + cross1;
    uint64_t quot = static_cast<uint64_t>(mulWide64(
                        x1, barrett128_hi_)) +
                    static_cast<uint64_t>(mid >> 64);

    uint64_t r = x0 - quot * value_;
    while (r >= value_)
        r -= value_;
    return r;
}

uint64_t
Modulus::shoupPrecompute(uint64_t w) const
{
    panicIf(w >= value_, "shoupPrecompute operand out of range");
    return static_cast<uint64_t>((uint128_t(w) << 64) / value_);
}

uint64_t
Modulus::pow(uint64_t base, uint64_t exp) const
{
    return mp::powMod64(base, exp, value_);
}

uint64_t
Modulus::inverse(uint64_t a) const
{
    panicIf(a % value_ == 0, "inverse of zero");
    // q is prime: a^(q-2) mod q.
    return mp::powMod64(a, value_ - 2, value_);
}

uint64_t
Modulus::slidingWindowReduce(uint64_t x) const
{
    panicIf(bits_ > kRnsPrimeBits,
            "sliding-window reduction requires a 30-bit modulus");
    panicIf(x >> 60, "sliding-window input must be below 2^60");

    // Fold the most significant 6 bits step by step. A fold at bit
    // position p >= 30 rewrites w*2^p as (w*2^30 mod q) * 2^(p-30),
    // shrinking the operand by ~5 bits per stage. The unrolled hardware
    // uses kSlidingWindowStages such stages (Sec. V-A4).
    for (int stage = 0; stage < kSlidingWindowStages; ++stage) {
        int len = heat::bitLength(x);
        if (len <= kRnsPrimeBits + 1)
            break;
        int p = len - 6;
        if (p < kRnsPrimeBits)
            p = kRnsPrimeBits;
        uint64_t w = x >> p;
        panicIf(w >= 64, "sliding window wider than 6 bits");
        x = (x & ((uint64_t(1) << p) - 1)) +
            (table_[w] << (p - kRnsPrimeBits));
    }

    // Final correction. For primes near 2^30 (the paper's case) the
    // sub-2^31 intermediate needs at most a subtraction of q or 2q; the
    // loop also covers smaller 30-bit primes used in tests.
    while (x >= value_)
        x -= value_;
    return x;
}

} // namespace heat::rns
