#include "rns/rns_base.h"

#include "common/panic.h"

namespace heat::rns {

RnsBase::RnsBase(const std::vector<uint64_t> &primes)
{
    fatalIf(primes.empty(), "RnsBase needs at least one modulus");
    product_ = mp::BigInt(1);
    for (uint64_t p : primes) {
        moduli_.emplace_back(p);
        product_ *= mp::BigInt::fromUint64(p);
    }
    for (size_t i = 0; i < primes.size(); ++i) {
        for (size_t j = i + 1; j < primes.size(); ++j)
            fatalIf(primes[i] == primes[j], "RNS moduli must be distinct");
    }

    qstar_.resize(moduli_.size());
    qtilde_.resize(moduli_.size());
    for (size_t i = 0; i < moduli_.size(); ++i) {
        qstar_[i] = product_ / mp::BigInt::fromUint64(moduli_[i].value());
        uint64_t qstar_mod_qi = qstar_[i].modUint64(moduli_[i].value());
        qtilde_[i] = moduli_[i].inverse(qstar_mod_qi);
    }
}

std::vector<uint64_t>
RnsBase::decompose(const mp::BigInt &value) const
{
    panicIf(value.isNegative() || value >= product_,
            "decompose input out of [0, q)");
    std::vector<uint64_t> residues(moduli_.size());
    for (size_t i = 0; i < moduli_.size(); ++i)
        residues[i] = value.modUint64(moduli_[i].value());
    return residues;
}

mp::BigInt
RnsBase::compose(const std::vector<uint64_t> &residues) const
{
    panicIf(residues.size() != moduli_.size(),
            "residue count does not match base size");
    // x = sum_i ([x_i * q~_i] mod q_i) * q*_i mod q  (Theorem 1).
    mp::BigInt acc;
    for (size_t i = 0; i < moduli_.size(); ++i) {
        uint64_t lambda = moduli_[i].mul(residues[i], qtilde_[i]);
        acc += qstar_[i] * mp::BigInt::fromUint64(lambda);
    }
    return acc.mod(product_);
}

mp::BigInt
RnsBase::composeCentered(const std::vector<uint64_t> &residues) const
{
    mp::BigInt x = compose(residues);
    // Shift representatives above q/2 down by q: result in (-q/2, q/2].
    if (x * mp::BigInt(2) > product_)
        x -= product_;
    return x;
}

RnsBase
RnsBase::concat(const RnsBase &a, const RnsBase &b)
{
    std::vector<uint64_t> primes;
    primes.reserve(a.size() + b.size());
    for (const auto &m : a.moduli())
        primes.push_back(m.value());
    for (const auto &m : b.moduli())
        primes.push_back(m.value());
    return RnsBase(primes);
}

bool
RnsBase::operator==(const RnsBase &other) const
{
    if (moduli_.size() != other.moduli_.size())
        return false;
    for (size_t i = 0; i < moduli_.size(); ++i) {
        if (moduli_[i] != other.moduli_[i])
            return false;
    }
    return true;
}

} // namespace heat::rns
