/**
 * @file
 * The Scale Q->q primitive: divide by q with rounding, in RNS.
 *
 * Given x in the extended base Q = q * p (representing the centered tensor
 * coefficient), compute y = round(t * x / q) expressed in the base p, then
 * (at the caller's discretion) switch y from base p back to base q with a
 * FastBaseConverter — exactly the paper's Fig. 9 Block 1-5 structure:
 *
 *   Block 1: sopR   = sum_i x_i * R_i           (fractional MACs)
 *   Block 2: sopI_j = sum_i x_i * (I_i mod q_j) (7 modular MAC lanes)
 *   Block 3: a'_j   = x_j * [t * Q~_j * (p/q_j)] mod q_j
 *   Block 4: y_j    = sopI_j + round(sopR) + a'_j  mod q_j
 *   Block 5: base switch p -> q (reuses the Lift datapath)
 *
 * where I_i + R_i = t * Q~_i * p / q_i split into integer and fractional
 * parts, R_i kept to 60 fractional bits (paper Sec. V-C). The key
 * identities making this work: p = 0 (mod q_j) kills both the CRT overflow
 * term gamma*t*p and the cross terms, so no explicit alpha correction is
 * needed for the p-base outputs.
 */

#ifndef HEAT_RNS_SCALE_ROUND_H
#define HEAT_RNS_SCALE_ROUND_H

#include <cstdint>
#include <span>
#include <vector>

#include "rns/base_convert.h"
#include "rns/rns_base.h"

namespace heat::rns {

/** Computes round(t * x / q) in the auxiliary base p (HPS method). */
class ScaleRounder
{
  public:
    ScaleRounder() = default;

    /**
     * Prepare scaling for moduli chain Q = q * p and plaintext modulus t.
     *
     * @param q_base the ciphertext base q.
     * @param p_base the auxiliary base p (coprime to q).
     * @param t plaintext modulus.
     */
    ScaleRounder(const RnsBase &q_base, const RnsBase &p_base, uint64_t t);

    /** @return the ciphertext base q. */
    const RnsBase &qBase() const { return q_; }

    /** @return the auxiliary base p. */
    const RnsBase &pBase() const { return p_; }

    /**
     * Scale one coefficient.
     *
     * @param in residues of x in the full base Q: first q.size() entries
     *           are the q-base residues, then p.size() p-base residues.
     * @param out receives residues of round(t*x/q) in the p base.
     */
    void scale(std::span<const uint64_t> in, std::span<uint64_t> out) const;

    /**
     * Scale a block of @p count coefficients at once.
     *
     * @param in_rows qBase().size() + pBase().size() pointers, one per
     *                full-base residue row, each holding count values
     *                (i.e. RnsPoly residue-major layout).
     * @param out_rows pBase().size() pointers receiving count scaled
     *                 values each.
     *
     * Bit-identical to count calls of scale(). When every full-base
     * modulus fits the SIMD lane bound (and the base is small enough
     * for the 128-bit sum-of-products kernels), the blocks run through
     * the dispatched vector kernels; otherwise this degrades to a
     * per-coefficient gather/scale/scatter loop.
     */
    void scaleBatch(const uint64_t *const *in_rows,
                    uint64_t *const *out_rows, size_t count) const;

    /**
     * Exact reference (BigInt): y = round-half-up(t * centered(x) / q),
     * reduced modulo each p-base prime. Oracle for tests and the model
     * for the traditional-CRT architecture.
     */
    void scaleExact(std::span<const uint64_t> in,
                    std::span<uint64_t> out) const;

    /** Fixed-point fractional bits used for the R_i constants. */
    static constexpr int kFracBits = 60;

  private:
    RnsBase q_;
    RnsBase p_;
    RnsBase full_; // q then p
    uint64_t t_ = 0;

    /** rfrac_[i] = round(frac(t * Q~_i * p / q_i) * 2^60). */
    std::vector<uint64_t> rfrac_;
    /** imod_[i][j] = floor(t * Q~_i * p / q_i) mod p_j. */
    std::vector<std::vector<uint64_t>> imod_;
    /** cj_[j] = [t * Q~_j * (p / q_j)] mod p_j. */
    std::vector<uint64_t> cj_;

    /** True when scaleBatch may use the SIMD sum-of-products kernels. */
    bool batch_eligible_ = false;
    /** wcol_[j] = {imod_[0][j], ..., imod_[kq-1][j], cj_[j]}. */
    std::vector<std::vector<uint64_t>> wcol_;
};

} // namespace heat::rns

#endif // HEAT_RNS_SCALE_ROUND_H
