/**
 * @file
 * Compile-time cycle attribution of a compiled circuit.
 *
 * attributeCompiledCircuit() walks a CompiledCircuit's instruction
 * stream and charges every instruction's modeled compute cycles to its
 * functional unit (hw::unitOf), its opcode, and — via
 * CompiledCircuit::instr_nodes — the circuit node that emitted it. The
 * cost model mirrors hw::Coprocessor::instructionComputeCycles exactly
 * (same block models, record levels reconstructed from the slot-action
 * log), so the per-unit totals sum to the cycles a fused execution of
 * the circuit reports, without running anything.
 *
 * This is what lets the compiler annotate nodes with attributed cost
 * at compile time, and what `heat_cli trace` cross-checks against the
 * coprocessor's runtime unit_cycles (the 0-cycle-delta acceptance
 * gate).
 */

#ifndef HEAT_COMPILER_ATTRIBUTION_H
#define HEAT_COMPILER_ATTRIBUTION_H

#include <array>
#include <map>

#include "compiler/compiler.h"

namespace heat::compiler {

/** Cycle breakdown of one compiled circuit (fused execution model). */
struct CircuitAttribution
{
    /** Compute + dispatch cycles bucketed by functional unit; sums
     *  exactly to total_cycles. */
    std::array<hw::Cycle, hw::kUnitCount> unit_cycles{};
    /** Compute cycles per opcode. */
    std::map<hw::Opcode, hw::Cycle> op_cycles;
    /** Compute cycles attributed to each circuit value id (nodes that
     *  emitted no instructions — inputs, fused relins — stay 0; spill
     *  traffic charges the node whose emission forced it). */
    std::vector<hw::Cycle> node_cycles;
    /** Sum of per-instruction compute cycles. */
    hw::Cycle compute_cycles = 0;
    /** Arm dispatch overhead: one per non-empty segment (fused). */
    hw::Cycle dispatch_cycles = 0;
    /** compute_cycles + dispatch_cycles == a fused run's fpga_cycles. */
    hw::Cycle total_cycles = 0;
    /** Key-switch key DMA microseconds (kKeyLoad bursts). */
    double key_dma_us = 0.0;

    hw::Cycle
    unitCycles(hw::Unit unit) const
    {
        return unit_cycles[static_cast<size_t>(unit)];
    }
};

/** Attribute @p compiled's modeled cycles. Pure function of the
 *  compiled artifact — no coprocessor, no execution. */
CircuitAttribution
attributeCompiledCircuit(const CompiledCircuit &compiled);

} // namespace heat::compiler

#endif // HEAT_COMPILER_ATTRIBUTION_H
