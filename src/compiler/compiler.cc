#include "compiler/compiler.h"

#include <algorithm>
#include <limits>
#include <map>
#include <string_view>
#include <utility>

#include <cstdio>
#include <cstdlib>

#include "common/panic.h"
#include "compiler/attribution.h"
#include "compiler/noise_pass.h"
#include "hw/arm_host.h"
#include "hw/program_builder.h"
#include "obs/trace.h"
#include "verify/verify.h"

namespace heat::compiler {

size_t
CompiledCircuit::instructionCount() const
{
    size_t count = 0;
    for (const Segment &seg : segments)
        count += seg.program.instrs.size();
    return count;
}

namespace {

/** Sentinel "used by the output download set" (after every node). */
constexpr size_t kUseAtEnd = std::numeric_limits<size_t>::max();

/** Compile-time state of one circuit value. */
struct ValueState
{
    /** Memory-file slots (valid while resident). */
    std::vector<hw::PolyId> slots;
    /** Slots hold the value on chip. */
    bool resident = false;
    /** A current host copy exists (inputs always; spills afterwards). */
    bool host = false;
    /** The value was on chip at least once (distinguishes the first
     *  upload from a spill reload in the statistics). */
    bool ever_resident = false;
    /** First segment whose program may consume the host copy. */
    size_t host_ready_segment = 0;
    /** Consuming node indices, ascending; kUseAtEnd for outputs. */
    std::vector<size_t> uses;
};

class CircuitCompiler
{
  public:
    CircuitCompiler(std::shared_ptr<const fv::FvParams> params,
                    const Circuit &circuit,
                    const CompilerOptions &options)
        : params_(std::move(params)),
          circuit_(options.auto_mod_switch
                       ? insertModSwitches(circuit, params_)
                       : circuit),
          evaluator_(params_),
          alloc_(*params_, options.hw, /*throw_on_pressure=*/true),
          hoist_rotations_(options.hoist_rotations),
          noise_check_(options.noise_check),
          auto_mod_switch_(options.auto_mod_switch),
          resident_positions_(options.resident_inputs)
    {
        std::sort(resident_positions_.begin(), resident_positions_.end());
        out_.params = params_;
        out_.hw = options.hw;
    }

    CompiledCircuit
    compile()
    {
        circuit_.validate();
        checkNoise();
        analyze();
        pinResidentInputs();
        segments_.emplace_back();

        for (size_t i = 0; i < circuit_.nodes.size(); ++i) {
            const CircuitNode &node = circuit_.nodes[i];
            if (node.kind == NodeKind::kInput)
                continue;
            if (node.kind == NodeKind::kRelin) {
                panicIf(!relin_emitted_[i],
                        "relinearization was not fused with its "
                        "producer");
                continue;
            }
            emitNode(i);
            tagNewInstructions(static_cast<ValueId>(i));
        }

        // Only still-live outputs travel back; spilled outputs already
        // have a current host copy.
        for (ValueId out : circuit_.outputs) {
            const ValueState &vs = values_[out];
            if (!vs.resident)
                continue;
            for (uint32_t p = 0; p < vs.slots.size(); ++p)
                currentSegment().downloads.push_back(
                    Transfer{Transfer::Source::kValue, out, p,
                             vs.slots[p]});
        }

        while (!segments_.empty() && segments_.back().uploads.empty() &&
               segments_.back().downloads.empty() &&
               segments_.back().program.instrs.empty())
            segments_.pop_back();

        // Pinned operands must still be resident with their original
        // slots — anything else means a guard above was bypassed and a
        // warm rerun would read garbage.
        for (size_t k = 0; k < out_.resident_inputs.size(); ++k) {
            const ValueState &vs =
                values_[circuit_.inputs[out_.resident_inputs[k]]];
            panicIf(!vs.resident ||
                        vs.slots != std::vector<hw::PolyId>{
                            out_.resident_slots[k][0],
                            out_.resident_slots[k][1]},
                    "resident input lost its pinned slots");
        }

        // Square away the instruction->node tags: one entry per
        // instruction in every surviving segment (untagged stragglers
        // stay kNoValue).
        instr_nodes_.resize(segments_.size());
        for (size_t s = 0; s < segments_.size(); ++s)
            instr_nodes_[s].resize(segments_[s].program.instrs.size(),
                                   kNoValue);
        out_.instr_nodes = std::move(instr_nodes_);

        out_.segments = std::move(segments_);
        out_.slot_actions = alloc_.actions();
        out_.inputs = circuit_.inputs;
        out_.outputs = circuit_.outputs;
        out_.peak_slots = alloc_.peakSlots();
        out_.galois_elements =
            requiredGaloisElements(circuit_, params_->degree());
        out_.circuit = std::move(circuit_);
        return std::move(out_);
    }

  private:
    // --- analysis --------------------------------------------------------

    /** Budget-propagation pass: always annotates, and per the
     *  noise_check option warns about or rejects circuits whose
     *  predicted budget dies before the outputs. Under auto_mod_switch
     *  the estimate runs on the transformed circuit with the
     *  average-case bound — the one the level assignment plans with
     *  (the worst-case bound can never profit from dropping levels, so
     *  judging the assignment by it would reject every gain). Also
     *  fixes each value's ciphertext level for the lowering below. */
    void
    checkNoise()
    {
        const NoiseEstimate est = estimateCircuitNoise(
            params_, circuit_,
            auto_mod_switch_ ? fv::NoiseBound::kAverageCase
                             : fv::NoiseBound::kWorstCase);
        levels_ = est.levels;
        out_.value_levels.assign(levels_.begin(), levels_.end());
        out_.noise_budget_bits = est.budget_bits;
        out_.min_output_noise_budget_bits = est.min_output_budget_bits;
        out_.noise_exhausted_node = est.first_exhausted;
        if (est.ok() || noise_check_ == NoiseCheck::kOff)
            return;
        const std::string diagnostic =
            noiseDiagnostic(params_, circuit_, est);
        fatalIf(noise_check_ == NoiseCheck::kReject, diagnostic);
        std::fprintf(stderr, "compileCircuit: warning: %s\n",
                     diagnostic.c_str());
    }

    void
    analyze()
    {
        const size_t n = circuit_.nodes.size();
        values_.resize(n);
        relin_of_.assign(n, kNoValue);
        relin_emitted_.assign(n, false);
        is_output_.assign(n, false);
        pinned_value_.assign(n, false);
        out_.value_sizes.resize(n);

        for (size_t i = 0; i < n; ++i) {
            const CircuitNode &node = circuit_.nodes[i];
            out_.value_sizes[i] =
                static_cast<uint32_t>(circuit_.valueSize(
                    static_cast<ValueId>(i)));
            for (int a = 0; a < nodeArgCount(node.kind); ++a)
                values_[node.args[a]].uses.push_back(i);
            if (node.kind == NodeKind::kRelin)
                relin_of_[node.args[0]] = static_cast<ValueId>(i);
        }
        for (ValueId out : circuit_.outputs) {
            values_[out].uses.push_back(kUseAtEnd);
            is_output_[out] = true;
        }
        for (ValueId in : circuit_.inputs)
            values_[in].host = true;

        hoist_sizes_ = rotationHoistGroupSizes(circuit_);
        for (size_t i = 0; i < n; ++i) {
            if (isRotationNode(circuit_.nodes[i].kind) &&
                hoist_sizes_[i] >= 2)
                ++hoist_remaining_[circuit_.nodes[i].args[0]];
        }
    }

    /**
     * Allocate the resident inputs' slot pairs before anything else, so
     * their record ids are the deterministic prefix 0..2R-1 of the slot
     * action log: a warm coprocessor that kept these records through
     * resetToPinned() replays the remaining actions and lands on
     * exactly the same ids. No upload Transfer is emitted — the cold
     * execution path uploads the pinned operands directly, and warm
     * executions skip them entirely.
     */
    void
    pinResidentInputs()
    {
        for (uint32_t pos : resident_positions_) {
            fatalIf(pos >= circuit_.inputs.size(),
                    "resident input position ", pos,
                    " out of range for a circuit with ",
                    circuit_.inputs.size(), " inputs");
            const ValueId v = circuit_.inputs[pos];
            fatalIf(pinned_value_[v],
                    "duplicate resident input position ", pos);
            ValueState &vs = values_[v];
            alloc_.setLevel(levels_[v]);
            std::array<hw::PolyId, 2> slots{hw::kNoPoly, hw::kNoPoly};
            for (int p = 0; p < 2; ++p) {
                slots[p] = alloc_.allocate(hw::BaseTag::kQ,
                                           hw::Layout::kNatural,
                                           "resident input");
                panicIf(slots[p] !=
                            2 * out_.resident_inputs.size() +
                                static_cast<size_t>(p),
                        "resident input slots are not the record prefix");
            }
            vs.slots = {slots[0], slots[1]};
            vs.resident = true;
            vs.ever_resident = true;
            pinned_value_[v] = true;
            out_.resident_inputs.push_back(pos);
            out_.resident_slots.push_back(slots);
        }
        out_.resident_action_count = alloc_.actions().size();
    }

    size_t
    nextUseAfter(ValueId v, size_t node) const
    {
        for (size_t use : values_[v].uses) {
            if (use > node)
                return use;
        }
        return 0; // no further use (0 is never "after" a node)
    }

    bool
    deadAfter(ValueId v, size_t node) const
    {
        return nextUseAfter(v, node) == 0;
    }

    // --- segments and residency -----------------------------------------

    Segment &currentSegment() { return segments_.back(); }
    size_t currentSegmentIndex() const { return segments_.size() - 1; }

    /**
     * Bring @p v on chip. Inputs and constants are host-available from
     * the start, so their uploads simply join the current segment;
     * reloading a value spilled in the current segment needs a fresh
     * one (its download runs after this segment's program).
     */
    void
    ensureResident(ValueId v, std::span<const ValueId> pinned,
                   size_t node)
    {
        ValueState &vs = values_[v];
        if (vs.resident)
            return;
        panicIf(!vs.host, "value ", v,
                " is neither resident nor host-backed");

        const size_t size = out_.value_sizes[v];
        // A level-l value spans fewer residue slots — allocate at the
        // value's own level so reloads match the spilled polynomials.
        const size_t live =
            alloc_.liveResidues(hw::BaseTag::kQ, levels_[v]);
        makeRoom(size * live, pinned, node);

        if (currentSegmentIndex() < vs.host_ready_segment)
            segments_.emplace_back();

        const char *label =
            vs.ever_resident ? "spill reload" : "circuit input";
        vs.slots.clear();
        alloc_.setLevel(levels_[v]);
        for (uint32_t p = 0; p < size; ++p) {
            const hw::PolyId slot = alloc_.allocate(
                hw::BaseTag::kQ, hw::Layout::kNatural, label);
            vs.slots.push_back(slot);
            currentSegment().uploads.push_back(
                Transfer{Transfer::Source::kValue, v, p, slot});
        }
        if (vs.ever_resident)
            out_.reloaded_polys += size;
        vs.resident = true;
        vs.ever_resident = true;
    }

    /** Spill live values until @p need slots are free. */
    void
    makeRoom(size_t need, std::span<const ValueId> pinned, size_t node)
    {
        while (alloc_.freeSlots() < need) {
            if (!spillOne(pinned, node))
                outOfSlots(node, need);
        }
    }

    [[noreturn]] void
    outOfSlots(size_t node, size_t need) const
    {
        fatal("circuit does not fit the memory file at node ", node,
              " (", nodeKindName(circuit_.nodes[node].kind), "): need ",
              need, " slots, ", alloc_.freeSlots(), " free of ",
              alloc_.capacity(), " (live ", alloc_.slotsInUse(),
              ", peak ", alloc_.peakSlots(),
              ") and no spillable value remains");
    }

    /**
     * Spill the resident value with the farthest next use (Belady).
     * Values whose host copy is already current (inputs, previously
     * spilled values) just drop their slots; everything else is DMA'd
     * back through a download appended to the current segment.
     */
    bool
    spillOne(std::span<const ValueId> pinned, size_t node)
    {
        ValueId victim = kNoValue;
        size_t victim_next = 0;
        for (size_t v = 0; v < values_.size(); ++v) {
            const ValueState &vs = values_[v];
            if (!vs.resident || pinned_value_[v])
                continue;
            if (std::find(pinned.begin(), pinned.end(),
                          static_cast<ValueId>(v)) != pinned.end())
                continue;
            const size_t next =
                nextUseAfter(static_cast<ValueId>(v), node);
            if (victim == kNoValue || next > victim_next) {
                victim = static_cast<ValueId>(v);
                victim_next = next;
            }
        }
        if (victim == kNoValue)
            return false;

        ValueState &vs = values_[victim];
        if (!vs.host) {
            for (uint32_t p = 0; p < vs.slots.size(); ++p)
                currentSegment().downloads.push_back(
                    Transfer{Transfer::Source::kValue, victim, p,
                             vs.slots[p]});
            out_.spilled_polys += vs.slots.size();
            vs.host = true;
            vs.host_ready_segment = currentSegmentIndex() + 1;
        }
        for (hw::PolyId slot : vs.slots)
            alloc_.release(slot);
        vs.slots.clear();
        vs.resident = false;
        return true;
    }

    /**
     * Store a live value back to the host while keeping its slots
     * resident, so the current node can consume (and the emitter
     * release) them. The download must complete before the consuming
     * instructions overwrite the records, hence the segment break.
     */
    void
    spillOperandKeepResident(ValueId v)
    {
        ValueState &vs = values_[v];
        panicIf(!vs.resident, "demoting a non-resident operand");
        if (!vs.host) {
            for (uint32_t p = 0; p < vs.slots.size(); ++p)
                currentSegment().downloads.push_back(
                    Transfer{Transfer::Source::kValue, v, p,
                             vs.slots[p]});
            out_.spilled_polys += vs.slots.size();
            vs.host = true;
            vs.host_ready_segment = currentSegmentIndex() + 1;
            segments_.emplace_back();
        }
    }

    // --- constants --------------------------------------------------------

    /** Encode (once per level) and stage (per use) a plaintext
     *  constant. Constants are level-specific: a level-l consumer needs
     *  the plaintext embedded in R_{q_l} (and scaled by Delta_l for
     *  AddPlain), so the pool is keyed by (plain index, level). */
    hw::PolyId
    stageConstant(const CircuitNode &node, size_t node_index,
                  std::span<const ValueId> pinned)
    {
        const size_t level = levels_[node_index];
        auto &cache = node.kind == NodeKind::kAddPlain
                          ? plain_const_add_
                          : plain_const_mul_;
        auto [it, fresh] =
            cache.try_emplace({node.plain, level}, -1);
        if (fresh) {
            const fv::Plaintext &plain = circuit_.plains[node.plain];
            out_.constants.push_back(
                node.kind == NodeKind::kAddPlain
                    ? evaluator_.scaledPlain(plain, level)
                    : evaluator_.embeddedPlain(plain, level));
            it->second = static_cast<int32_t>(out_.constants.size() - 1);
        }

        const size_t live = alloc_.liveResidues(hw::BaseTag::kQ, level);
        makeRoom(live, pinned, node_index);
        alloc_.setLevel(level);
        const hw::PolyId slot = alloc_.allocate(
            hw::BaseTag::kQ, hw::Layout::kNatural, "plaintext constant");
        currentSegment().uploads.push_back(
            Transfer{Transfer::Source::kConstant,
                     static_cast<uint32_t>(it->second), 0, slot});
        return slot;
    }

    // --- node emission ----------------------------------------------------

    std::array<hw::PolyId, 2>
    pair(ValueId v) const
    {
        const ValueState &vs = values_[v];
        panicIf(vs.slots.size() < 2, "value ", v, " has no slot pair");
        return {vs.slots[0], vs.slots[1]};
    }

    struct EmitResult
    {
        std::vector<hw::PolyId> result;       // slots of value i
        std::vector<hw::PolyId> relin_result; // slots of the fused relin
        /** Shared key-switch digit slots a hoist group's first member
         *  materialized (committed to hoist_digits_ on success). */
        std::vector<hw::PolyId> hoist_digits;
    };

    void
    emitNode(size_t i)
    {
        const CircuitNode &node = circuit_.nodes[i];

        std::vector<ValueId> operands;
        for (int a = 0; a < nodeArgCount(node.kind); ++a)
            operands.push_back(node.args[a]);

        for (ValueId v : operands)
            ensureResident(v, operands, i);

        hw::PolyId plain_slot = hw::kNoPoly;
        if (node.plain >= 0)
            plain_slot = stageConstant(node, i, operands);

        // Consume flags: an operand whose last use this is may be
        // overwritten, aliased into the result, or released by the
        // emitter — its slots die with it either way. Mult/Square can
        // additionally consume a still-live operand whose host copy is
        // current ("demotion"): the emitter releases its slots instead
        // of copying them, and a later use reloads from the host.
        // Rotation emitters never consume (their results are always
        // fresh slots); dead rotation operands release through the
        // generic death handling below.
        const bool rotation_like =
            isRotationNode(node.kind) ||
            node.kind == NodeKind::kRotateSum;
        bool consume_a = !rotation_like &&
                         !pinned_value_[operands[0]] &&
                         deadAfter(operands[0], i);
        bool consume_b = operands.size() > 1 &&
                         operands[1] != operands[0] &&
                         !pinned_value_[operands[1]] &&
                         deadAfter(operands[1], i);
        bool demoted_a = false;
        bool demoted_b = false;
        const bool can_demote = node.kind == NodeKind::kMult ||
                                node.kind == NodeKind::kSquare;

        // Emit at the operand's level: every emitter allocates its
        // temporaries and results against the allocator level, and a
        // kModSwitch emitter moves it one deeper itself. (The snapshot
        // below captures the level, so rollbacks keep it.)
        alloc_.setLevel(levels_[operands[0]]);

        // Retry loop: a failed allocation rolls the partial emission
        // back, frees slots one step at a time and tries again.
        EmitResult emitted;
        for (;;) {
            const hw::CountingAllocator alloc_snapshot = alloc_;
            const size_t n_instrs = currentSegment().program.instrs.size();
            const hw::PolyId zero_snapshot = zero_;
            try {
                emitted = emitOp(i, node, operands, plain_slot,
                                 consume_a, consume_b);
                break;
            } catch (const hw::SlotPressureError &e) {
                alloc_ = alloc_snapshot;
                currentSegment().program.instrs.resize(n_instrs);
                zero_ = zero_snapshot;
                if (spillOne(operands, i))
                    continue;
                // Pinned operands can never be demoted: their slots
                // must survive the whole program for warm reruns.
                if (can_demote && !consume_a &&
                    !pinned_value_[operands[0]] &&
                    values_[operands[0]].host) {
                    consume_a = true;
                    demoted_a = true;
                    continue;
                }
                if (can_demote && operands.size() > 1 &&
                    operands[1] != operands[0] && !consume_b &&
                    !pinned_value_[operands[1]] &&
                    values_[operands[1]].host) {
                    consume_b = true;
                    demoted_b = true;
                    continue;
                }
                // Last resort: store a live operand back to the host
                // (a segment break — its data must leave before the
                // schedule overwrites it) and let the op consume it.
                if (can_demote && !consume_a &&
                    !pinned_value_[operands[0]]) {
                    spillOperandKeepResident(operands[0]);
                    consume_a = true;
                    demoted_a = true;
                    continue;
                }
                if (can_demote && operands.size() > 1 &&
                    operands[1] != operands[0] && !consume_b &&
                    !pinned_value_[operands[1]]) {
                    spillOperandKeepResident(operands[1]);
                    consume_b = true;
                    demoted_b = true;
                    continue;
                }
                fatal("circuit does not fit the memory file at node ",
                      i, " (", nodeKindName(node.kind), "): ", e.what(),
                      "; no spillable value remains");
            }
        }

        // Hoist-group bookkeeping: commit freshly-materialized shared
        // digits, and release them after the group's last rotation.
        if (isRotationNode(node.kind) && hoist_sizes_[i] >= 2 &&
            hoist_rotations_) {
            if (!emitted.hoist_digits.empty())
                hoist_digits_[operands[0]] = emitted.hoist_digits;
            uint32_t &remaining = hoist_remaining_[operands[0]];
            if (--remaining == 0) {
                const auto it = hoist_digits_.find(operands[0]);
                if (it != hoist_digits_.end()) {
                    for (hw::PolyId d : it->second)
                        alloc_.release(d);
                    hoist_digits_.erase(it);
                }
            }
        }

        // Results become resident values.
        const ValueId relin_node =
            (node.kind == NodeKind::kMult ||
             node.kind == NodeKind::kSquare)
                ? relin_of_[i]
                : kNoValue;
        if (!emitted.result.empty()) {
            ValueState &vs = values_[i];
            vs.slots = emitted.result;
            vs.resident = true;
            vs.ever_resident = true;
        }
        if (relin_node != kNoValue) {
            ValueState &vs = values_[relin_node];
            vs.slots = emitted.relin_result;
            vs.resident = true;
            vs.ever_resident = true;
            relin_emitted_[relin_node] = true;
        }

        // Operand death. Consumed operands were overwritten/aliased/
        // released by the emitter; dead-but-unconsumed ones (the b side
        // of element-wise ops) release their slots here.
        const bool emitter_consumes_b =
            node.kind == NodeKind::kMult || node.kind == NodeKind::kSquare;
        for (size_t k = 0; k < operands.size(); ++k) {
            const ValueId v = operands[k];
            if (k > 0 && v == operands[0])
                continue; // same value, handled once
            if (pinned_value_[v])
                continue; // stays resident for warm reruns
            if (!deadAfter(v, i))
                continue;
            ValueState &vs = values_[v];
            const bool consumed =
                (k == 0 && consume_a) ||
                (k == 1 && consume_b && emitter_consumes_b);
            if (!consumed) {
                for (hw::PolyId slot : vs.slots)
                    alloc_.release(slot);
            }
            vs.slots.clear();
            vs.resident = false;
        }

        // Demoted operands gave their slots to the op (the emitter
        // released them); the value itself lives on through its host
        // copy and reloads at its next use.
        if (demoted_a && !deadAfter(operands[0], i)) {
            values_[operands[0]].slots.clear();
            values_[operands[0]].resident = false;
        }
        if (demoted_b && !deadAfter(operands[1], i)) {
            values_[operands[1]].slots.clear();
            values_[operands[1]].resident = false;
        }

        if (plain_slot != hw::kNoPoly)
            alloc_.release(plain_slot);

        // Values nothing will ever read (dead on arrival) free their
        // slots immediately.
        retireIfUnused(static_cast<ValueId>(i), i);
        if (relin_node != kNoValue)
            retireIfUnused(relin_node, i);
    }

    /** Attribute every instruction not yet tagged to @p node: called
     *  right after emitNode(i), so the delta since the previous sync —
     *  including spill traffic and reloads the node's emission forced,
     *  across any segments it opened — charges to node i. Rolled-back
     *  partial emissions never reach here (tags happen on success). */
    void
    tagNewInstructions(ValueId node)
    {
        instr_nodes_.resize(segments_.size());
        for (size_t s = 0; s < segments_.size(); ++s)
            instr_nodes_[s].resize(segments_[s].program.instrs.size(),
                                   node);
    }

    void
    retireIfUnused(ValueId v, size_t node)
    {
        ValueState &vs = values_[v];
        if (!vs.resident || !deadAfter(v, node))
            return;
        for (hw::PolyId slot : vs.slots)
            alloc_.release(slot);
        vs.slots.clear();
        vs.resident = false;
    }

    EmitResult
    emitOp(size_t i, const CircuitNode &node,
           std::span<const ValueId> operands, hw::PolyId plain_slot,
           bool consume_a, bool consume_b)
    {
        hw::OpEmitter em(*params_, alloc_, currentSegment().program);
        em.setZeroSlotId(zero_);

        EmitResult out;
        const auto asVector = [](std::array<hw::PolyId, 2> r) {
            return std::vector<hw::PolyId>{r[0], r[1]};
        };
        switch (node.kind) {
          case NodeKind::kAdd:
            out.result = asVector(em.emitAdd(
                pair(operands[0]), pair(operands[1]), consume_a));
            break;
          case NodeKind::kSub:
            out.result = asVector(em.emitSub(
                pair(operands[0]), pair(operands[1]), consume_a));
            break;
          case NodeKind::kNegate:
            out.result =
                asVector(em.emitNegate(pair(operands[0]), consume_a));
            break;
          case NodeKind::kAddPlain:
            out.result = asVector(em.emitAddPlain(
                pair(operands[0]), plain_slot, consume_a));
            break;
          case NodeKind::kMultPlain:
            out.result = asVector(em.emitMultPlain(
                pair(operands[0]), plain_slot, consume_a));
            break;
          case NodeKind::kMult:
          case NodeKind::kSquare: {
            const ValueId relin_node = relin_of_[i];
            const bool has_relin = relin_node != kNoValue;
            // A 3-element value the caller wants back (or that nothing
            // relinearizes) must materialize c2; a relin-only tensor
            // lets the digit broadcast replace it.
            const bool want_c2 = is_output_[i] || !has_relin;
            const bool square =
                node.kind == NodeKind::kSquare ||
                (operands.size() > 1 && operands[0] == operands[1]);
            hw::OpEmitter::MultResult tensor =
                square
                    ? em.emitSquare(pair(operands[0]), consume_a,
                                    has_relin, want_c2)
                    : em.emitMult(pair(operands[0]), pair(operands[1]),
                                  consume_a, consume_b, has_relin,
                                  want_c2);
            if (want_c2)
                out.result = {tensor.ct[0], tensor.ct[1], tensor.ct[2]};
            if (has_relin) {
                // In-place accumulation would clobber c0/c1, so a
                // tensor that must survive as a value is copied first.
                const std::array<hw::PolyId, 2> relin = em.emitRelin(
                    tensor.ct[0], tensor.ct[1], tensor.digits,
                    /*consume_c01=*/!want_c2);
                out.relin_result = {relin[0], relin[1]};
            }
            break;
          }
          case NodeKind::kRotate:
          case NodeKind::kRotateColumns: {
            const uint32_t g = rotationElement(node, params_->degree());
            const std::array<hw::PolyId, 2> a = pair(operands[0]);
            if (g == 1) {
                // Identity rotation (steps congruent to zero): a fresh
                // copy, no key-switch, no shared digits consumed.
                out.result = {em.copyPoly(a[0]), em.copyPoly(a[1])};
            } else if (hoist_sizes_[i] < 2) {
                out.result = asVector(em.emitApplyGalois(a, g));
            } else if (!hoist_rotations_) {
                // Hoisted numerics without the sharing: the bit-exact
                // baseline the hoisting benchmark compares against.
                out.result =
                    asVector(em.emitApplyGaloisHoistedSingle(a, g));
            } else {
                const auto it = hoist_digits_.find(operands[0]);
                if (it == hoist_digits_.end()) {
                    out.hoist_digits =
                        em.emitDecomposeNtt(a[1]);
                    out.result = asVector(
                        em.emitHoistedGalois(a, out.hoist_digits, g));
                } else {
                    out.result = asVector(
                        em.emitHoistedGalois(a, it->second, g));
                }
            }
            break;
          }
          case NodeKind::kRotateSum:
            out.result = asVector(em.emitRotateSum(pair(operands[0])));
            break;
          case NodeKind::kModSwitch:
            out.result = asVector(
                em.emitModSwitch(pair(operands[0]), consume_a));
            break;
          case NodeKind::kInput:
          case NodeKind::kRelin:
            panic("node kind cannot be emitted directly");
        }

        zero_ = em.zeroSlotId();
        return out;
    }

    std::shared_ptr<const fv::FvParams> params_;
    /** Owned: the caller's circuit, or its insertModSwitches transform. */
    Circuit circuit_;
    fv::Evaluator evaluator_;
    hw::CountingAllocator alloc_;

    CompiledCircuit out_;
    std::vector<Segment> segments_;
    /** Instruction->node tags, kept in sync by tagNewInstructions(). */
    std::vector<std::vector<ValueId>> instr_nodes_;
    std::vector<ValueState> values_;
    std::vector<ValueId> relin_of_;
    std::vector<bool> relin_emitted_;
    std::vector<bool> is_output_;
    /** Value is a pinned resident input (never spilled or released). */
    std::vector<bool> pinned_value_;
    /** Constant-pool index per (plain index, ciphertext level). */
    std::map<std::pair<int32_t, size_t>, int32_t> plain_const_add_;
    std::map<std::pair<int32_t, size_t>, int32_t> plain_const_mul_;
    hw::PolyId zero_ = hw::kNoPoly;

    bool hoist_rotations_;
    NoiseCheck noise_check_;
    bool auto_mod_switch_;
    /** Sorted copy of CompilerOptions::resident_inputs. */
    std::vector<uint32_t> resident_positions_;
    /** Ciphertext level per value id (valueLevels of circuit_). */
    std::vector<size_t> levels_;
    /** Per-node hoist-group size (0 for non-rotation nodes). */
    std::vector<uint32_t> hoist_sizes_;
    /** Rotations of each grouped input not yet emitted. */
    std::map<ValueId, uint32_t> hoist_remaining_;
    /** Live shared NTT-domain digit slots, keyed by rotated input. */
    std::map<ValueId, std::vector<hw::PolyId>> hoist_digits_;
};

void
validateInput(const fv::FvParams &params, const fv::Ciphertext &ct)
{
    fatalIf(ct.size() != 2, "circuit inputs must be size-2 "
                            "ciphertexts (relinearize first)");
    fatalIf(ct.level != 0,
            "circuit inputs enter at level 0 (the compiler inserts "
            "any mod-switches itself); got level ", ct.level);
    for (size_t i = 0; i < ct.size(); ++i) {
        fatalIf(ct[i].degree() != params.degree() ||
                    ct[i].residueCount() != params.qBase()->size(),
                "input polynomial does not match the parameter set");
        fatalIf(ct[i].form() != ntt::PolyForm::kCoeff,
                "inputs must be in coefficient form (what the DMA "
                "streams to the accelerator)");
    }
}

void
validateInputs(const fv::FvParams &params,
               std::span<const fv::Ciphertext> inputs, size_t expected)
{
    fatalIf(inputs.size() != expected, "circuit expects ", expected,
            " inputs, got ", inputs.size());
    for (const fv::Ciphertext &ct : inputs)
        validateInput(params, ct);
}

/**
 * Shared executor behind runCompiledCircuit / runCompiledCircuitWarm.
 * @p inputs holds one pointer per circuit input position; resident
 * positions may be null on the warm path (their operands are already
 * in the pinned memory-file prefix).
 */
std::vector<fv::Ciphertext>
runCompiledImpl(hw::Coprocessor &cp, const CompiledCircuit &compiled,
                std::span<const fv::Ciphertext *const> inputs,
                bool warm, CircuitRunStats *stats)
{
    const hw::ArmHostModel host(compiled.params, cp.config());
    const size_t resident_count = compiled.resident_inputs.size();

    CircuitRunStats run;
    run.segments = compiled.segments.size();

    // Modeled-time tracing (see obs/trace.h): host-transfer spans are
    // emitted here; cp.execute() emits the per-instruction spans and
    // advances the shared thread-local modeled clock itself.
    obs::Tracer *const tracer = obs::activeTracer();
    const double trace_start_us = obs::modeledNowUs();
    // Exact sum of every modeled advance under this span — reported as
    // the run-circuit duration instead of end-minus-start, whose
    // rounding depends on the worker clock's base value (determinism
    // across worker counts).
    double traced_us = 0.0;
    const auto hostSpan = [&](const char *name, double dur_us) {
        if (tracer == nullptr || dur_us <= 0.0)
            return;
        obs::recordModeledSpan(name, "host", obs::modeledNowUs(), dur_us);
        obs::advanceModeledUs(dur_us);
        traced_us += dur_us;
    };

    if (warm) {
        fatalIf(resident_count == 0,
                "warm execution needs a circuit compiled with "
                "resident inputs");
        fatalIf(cp.memory().pinnedRecords() != 2 * resident_count,
                "coprocessor does not hold this circuit's pinned "
                "prefix (", cp.memory().pinnedRecords(),
                " pinned records, expected ", 2 * resident_count,
                "); run a cold pass first");
        cp.memory().resetToPinned();
        hw::replaySlotActions(
            cp.memory(),
            std::span<const hw::SlotAction>(compiled.slot_actions)
                .subspan(compiled.resident_action_count));
    } else {
        cp.reset();
        hw::replaySlotActions(cp.memory(), compiled.slot_actions);
        // Pinned operands bypass the segment upload lists: they are
        // DMA'd straight into their prefix slots once, here, and then
        // survive every warm rerun through resetToPinned().
        for (size_t k = 0; k < resident_count; ++k) {
            const fv::Ciphertext &ct =
                *inputs[compiled.resident_inputs[k]];
            for (int p = 0; p < 2; ++p)
                cp.uploadInto(compiled.resident_slots[k][p], ct[p]);
        }
        if (resident_count > 0) {
            run.uploaded_polys += 2 * resident_count;
            const double us = host.sendPolysUs(2 * resident_count);
            run.host_us += us;
            hostSpan("upload:resident", us);
            cp.memory().setPinnedRecords(2 * resident_count);
        }
    }

    std::vector<std::vector<ntt::RnsPoly>> values(
        compiled.value_sizes.size());
    for (size_t k = 0; k < compiled.inputs.size(); ++k) {
        if (inputs[k] != nullptr)
            values[compiled.inputs[k]] = {(*inputs[k])[0],
                                          (*inputs[k])[1]};
    }

    for (const Segment &seg : compiled.segments) {
        for (const Transfer &up : seg.uploads) {
            const ntt::RnsPoly &src =
                up.source == Transfer::Source::kConstant
                    ? compiled.constants[up.index]
                    : values[up.index][up.poly];
            panicIf(src.degree() == 0, "upload source is not available");
            cp.uploadInto(up.slot, src);
        }
        run.uploaded_polys += seg.uploads.size();
        if (!seg.uploads.empty()) {
            const double us = host.sendPolysUs(seg.uploads.size());
            run.host_us += us;
            hostSpan("upload", us);
        }

        const hw::ExecStats es =
            cp.execute(seg.program, hw::DispatchMode::kFusedProgram);
        traced_us += es.traced_us;
        run.fpga_cycles += es.fpga_cycles;
        run.dma_us += es.dma_us;
        run.instructions += es.instructions;
        for (size_t u = 0; u < hw::kUnitCount; ++u)
            run.unit_cycles[u] += es.unit_cycles[u];
        if (!seg.program.instrs.empty())
            ++run.dispatches;

        for (const Transfer &down : seg.downloads) {
            std::vector<ntt::RnsPoly> &store = values[down.index];
            store.resize(compiled.value_sizes[down.index]);
            // Value polynomials are q-base; the record may be slot-
            // extended by a later lift of this fused program.
            store[down.poly] = cp.memory().exportQBase(down.slot);
        }
        run.downloaded_polys += seg.downloads.size();
        if (!seg.downloads.empty()) {
            const double us = host.receivePolysUs(seg.downloads.size());
            run.host_us += us;
            hostSpan("download", us);
        }
    }
    if (tracer != nullptr) {
        obs::recordModeledSpan(
            warm ? "run-circuit:warm" : "run-circuit", "compiler",
            trace_start_us, traced_us,
            {{"segments", std::to_string(run.segments)},
             {"instructions", std::to_string(run.instructions)},
             {"fpga_cycles", std::to_string(run.fpga_cycles)}});
    }

    std::vector<fv::Ciphertext> outputs;
    outputs.reserve(compiled.outputs.size());
    for (ValueId out : compiled.outputs) {
        const std::vector<ntt::RnsPoly> &store = values[out];
        panicIf(store.size() != compiled.value_sizes[out],
                "output value ", out, " was never materialized");
        fv::Ciphertext ct;
        ct.level = out < compiled.value_levels.size()
                       ? compiled.value_levels[out]
                       : 0;
        for (const ntt::RnsPoly &poly : store) {
            panicIf(poly.degree() == 0, "output polynomial missing");
            ct.polys.push_back(poly);
        }
        outputs.push_back(std::move(ct));
    }
    if (stats != nullptr)
        *stats = run;
    return outputs;
}

} // namespace

VerifyCheck
defaultVerifyCheck()
{
    static const VerifyCheck check = [] {
        const char *env = std::getenv("HEAT_VERIFY");
        if (env == nullptr)
            return VerifyCheck::kWarn;
        const std::string_view v(env);
        if (v == "off")
            return VerifyCheck::kOff;
        if (v == "reject")
            return VerifyCheck::kReject;
        if (v != "warn")
            std::fprintf(stderr,
                         "HEAT_VERIFY: unknown value \"%s\" (want "
                         "off|warn|reject); using warn\n",
                         env);
        return VerifyCheck::kWarn;
    }();
    return check;
}

CompiledCircuit
compileCircuit(std::shared_ptr<const fv::FvParams> params,
               const Circuit &circuit, const CompilerOptions &options)
{
    CompiledCircuit out =
        CircuitCompiler(std::move(params), circuit, options).compile();
    out.node_cycles = attributeCompiledCircuit(out).node_cycles;
    if (options.verify != VerifyCheck::kOff) {
        const verify::VerifyResult result =
            verify::verifyCompiledCircuit(out);
        if (!result.ok()) {
            fatalIf(options.verify == VerifyCheck::kReject,
                    "compiled circuit failed static verification\n",
                    result.report());
            std::fprintf(stderr,
                         "compileCircuit: warning: static verifier: %s",
                         result.report().c_str());
        }
    }
    return out;
}

std::vector<fv::Ciphertext>
runCompiledCircuit(hw::Coprocessor &cp, const CompiledCircuit &compiled,
                   std::span<const fv::Ciphertext> inputs,
                   CircuitRunStats *stats)
{
    validateInputs(*compiled.params, inputs, compiled.inputs.size());
    std::vector<const fv::Ciphertext *> ptrs;
    ptrs.reserve(inputs.size());
    for (const fv::Ciphertext &ct : inputs)
        ptrs.push_back(&ct);
    return runCompiledImpl(cp, compiled, ptrs, /*warm=*/false, stats);
}

std::vector<fv::Ciphertext>
runCompiledCircuitWarm(hw::Coprocessor &cp,
                       const CompiledCircuit &compiled,
                       std::span<const fv::Ciphertext> request_inputs,
                       CircuitRunStats *stats)
{
    fatalIf(request_inputs.size() + compiled.resident_inputs.size() !=
                compiled.inputs.size(),
            "circuit expects ",
            compiled.inputs.size() - compiled.resident_inputs.size(),
            " non-resident inputs, got ", request_inputs.size());
    std::vector<const fv::Ciphertext *> ptrs(compiled.inputs.size(),
                                             nullptr);
    std::vector<bool> resident(compiled.inputs.size(), false);
    for (uint32_t pos : compiled.resident_inputs)
        resident[pos] = true;
    size_t next = 0;
    for (size_t k = 0; k < ptrs.size(); ++k) {
        if (resident[k])
            continue;
        validateInput(*compiled.params, request_inputs[next]);
        ptrs[k] = &request_inputs[next++];
    }
    return runCompiledImpl(cp, compiled, ptrs, /*warm=*/true, stats);
}

std::vector<fv::Ciphertext>
runCircuitOpByOp(hw::Coprocessor &cp,
                 std::shared_ptr<const fv::FvParams> params,
                 const Circuit &circuit,
                 std::span<const fv::Ciphertext> inputs,
                 CircuitRunStats *stats)
{
    circuit.validate();
    validateInputs(*params, inputs, circuit.inputs.size());
    const fv::Evaluator evaluator(params);
    const hw::ArmHostModel host(params, cp.config());

    std::vector<ValueId> relin_of(circuit.nodes.size(), kNoValue);
    std::vector<bool> is_output(circuit.nodes.size(), false);
    const std::vector<uint32_t> hoist_sizes =
        rotationHoistGroupSizes(circuit);
    const std::vector<size_t> levels = valueLevels(circuit);
    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        if (circuit.nodes[i].kind == NodeKind::kRelin)
            relin_of[circuit.nodes[i].args[0]] =
                static_cast<ValueId>(i);
    }
    for (ValueId out : circuit.outputs)
        is_output[out] = true;

    std::vector<fv::Ciphertext> values(circuit.nodes.size());
    CircuitRunStats run;
    size_t next_input = 0;

    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        const CircuitNode &node = circuit.nodes[i];
        if (node.kind == NodeKind::kInput) {
            values[i] = inputs[next_input++];
            continue;
        }
        if (node.kind == NodeKind::kRelin)
            continue; // folded into its producer's round trip

        // One full round trip per operation: reprogram, upload the
        // operands, dispatch per instruction, download the results.
        // Temporaries allocate at the operand's level (uploads size
        // their records from the polynomial itself; a kModSwitch
        // emitter moves the allocator one level deeper on its own).
        cp.reset();
        cp.memory().setLevel(levels[node.args[0]]);
        hw::Program program;
        hw::OpEmitter em(*params, cp.memory(), program);

        const auto uploadValue = [&](ValueId v) {
            const fv::Ciphertext &ct = values[v];
            std::array<hw::PolyId, 2> slots{hw::kNoPoly, hw::kNoPoly};
            for (int p = 0; p < 2; ++p)
                slots[p] = cp.uploadPoly(ct[p]);
            run.uploaded_polys += 2;
            return slots;
        };
        const auto uploadPlain = [&](const ntt::RnsPoly &poly) {
            run.uploaded_polys += 1;
            return cp.uploadPoly(poly);
        };

        std::vector<std::pair<ValueId, std::vector<hw::PolyId>>> results;
        size_t round_uploads = 0;
        switch (node.kind) {
          case NodeKind::kAdd: {
            const auto a = uploadValue(node.args[0]);
            const auto b = uploadValue(node.args[1]);
            round_uploads = 4;
            const auto r = em.emitAdd(a, b, /*consume_a=*/true);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kSub: {
            const auto a = uploadValue(node.args[0]);
            const auto b = uploadValue(node.args[1]);
            round_uploads = 4;
            const auto r = em.emitSub(a, b, /*consume_a=*/true);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kNegate: {
            const auto a = uploadValue(node.args[0]);
            round_uploads = 2;
            const auto r = em.emitNegate(a, /*consume=*/true);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kAddPlain: {
            const auto a = uploadValue(node.args[0]);
            const hw::PolyId plain = uploadPlain(evaluator.scaledPlain(
                circuit.plains[node.plain], levels[i]));
            round_uploads = 3;
            const auto r = em.emitAddPlain(a, plain, /*consume=*/true);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kMultPlain: {
            const auto a = uploadValue(node.args[0]);
            const hw::PolyId plain = uploadPlain(evaluator.embeddedPlain(
                circuit.plains[node.plain], levels[i]));
            round_uploads = 3;
            const auto r = em.emitMultPlain(a, plain, /*consume=*/true);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kMult:
          case NodeKind::kSquare: {
            const ValueId relin_node = relin_of[i];
            const bool has_relin = relin_node != kNoValue;
            const bool want_c2 = is_output[static_cast<ValueId>(i)] ||
                                 !has_relin;
            const bool square =
                node.kind == NodeKind::kSquare ||
                node.args[0] == node.args[1];
            hw::OpEmitter::MultResult tensor;
            if (square) {
                const auto a = uploadValue(node.args[0]);
                round_uploads = 2;
                tensor = em.emitSquare(a, /*consume=*/true, has_relin,
                                       want_c2);
            } else {
                const auto a = uploadValue(node.args[0]);
                const auto b = uploadValue(node.args[1]);
                round_uploads = 4;
                tensor = em.emitMult(a, b, true, true, has_relin,
                                     want_c2);
            }
            if (want_c2)
                results.push_back(
                    {static_cast<ValueId>(i),
                     {tensor.ct[0], tensor.ct[1], tensor.ct[2]}});
            if (has_relin) {
                const auto r =
                    em.emitRelin(tensor.ct[0], tensor.ct[1],
                                 tensor.digits,
                                 /*consume_c01=*/!want_c2);
                results.push_back({relin_node, {r[0], r[1]}});
            }
            break;
          }
          case NodeKind::kRotate:
          case NodeKind::kRotateColumns: {
            const auto a = uploadValue(node.args[0]);
            round_uploads = 2;
            const uint32_t g = rotationElement(node, params->degree());
            // Hoist-group members keep the hoisted numerics so the
            // op-by-op baseline stays bit-identical to the fused path
            // — it just pays the decompose per rotation.
            const auto r =
                hoist_sizes[i] >= 2
                    ? em.emitApplyGaloisHoistedSingle(a, g)
                    : em.emitApplyGalois(a, g);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kRotateSum: {
            const auto a = uploadValue(node.args[0]);
            round_uploads = 2;
            const auto r = em.emitRotateSum(a);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kModSwitch: {
            const auto a = uploadValue(node.args[0]);
            round_uploads = 2;
            const auto r = em.emitModSwitch(a, /*consume=*/true);
            results.push_back({static_cast<ValueId>(i), {r[0], r[1]}});
            break;
          }
          case NodeKind::kInput:
          case NodeKind::kRelin:
            panic("unreachable");
        }

        const hw::ExecStats es =
            cp.execute(program, hw::DispatchMode::kPerInstruction);
        run.fpga_cycles += es.fpga_cycles;
        run.dma_us += es.dma_us;
        run.instructions += es.instructions;
        run.dispatches += es.instructions;
        for (size_t u = 0; u < hw::kUnitCount; ++u)
            run.unit_cycles[u] += es.unit_cycles[u];
        run.segments += 1;

        size_t round_downloads = 0;
        for (const auto &[value, slots] : results) {
            fv::Ciphertext ct;
            ct.level = levels[value];
            for (hw::PolyId slot : slots)
                ct.polys.push_back(cp.downloadPoly(slot));
            round_downloads += slots.size();
            values[value] = std::move(ct);
        }
        run.downloaded_polys += round_downloads;
        const double round_host_us = host.sendPolysUs(round_uploads) +
                                     host.receivePolysUs(round_downloads);
        run.host_us += round_host_us;
        if (obs::activeTracer() != nullptr) {
            obs::recordModeledSpan("host-roundtrip", "host",
                                   obs::modeledNowUs(), round_host_us);
            obs::advanceModeledUs(round_host_us);
        }
    }

    std::vector<fv::Ciphertext> outputs;
    outputs.reserve(circuit.outputs.size());
    for (ValueId out : circuit.outputs)
        outputs.push_back(values[out]);
    if (stats != nullptr)
        *stats = run;
    return outputs;
}

} // namespace heat::compiler
