#include "compiler/attribution.h"

#include <unordered_map>

#include "common/panic.h"
#include "hw/dma.h"
#include "hw/lift_unit.h"
#include "hw/rpau.h"
#include "hw/scale_unit.h"

namespace heat::compiler {
namespace {

/**
 * Record levels from the slot-action log. Ids are handed out
 * sequentially and never reused within one compiled circuit, so a
 * record's level is fixed by its kAllocate action — the same level
 * MemoryFile::recordLevel() reports after replaySlotActions().
 */
std::unordered_map<hw::PolyId, size_t>
recordLevels(const CompiledCircuit &compiled)
{
    std::unordered_map<hw::PolyId, size_t> levels;
    levels.reserve(compiled.slot_actions.size());
    for (const hw::SlotAction &action : compiled.slot_actions) {
        if (action.kind == hw::SlotAction::Kind::kAllocate)
            levels.emplace(action.id, action.level);
    }
    return levels;
}

} // namespace

CircuitAttribution
attributeCompiledCircuit(const CompiledCircuit &compiled)
{
    const fv::FvParams &params = *compiled.params;
    const hw::HwConfig &config = compiled.hw;

    // The same block models the coprocessor charges from; all cheap to
    // construct (they hold parameters, not state).
    const hw::Rpau rpau(0, config, params.degree());
    const hw::LiftUnit lift(compiled.params, config);
    const hw::ScaleUnit scale(compiled.params, config);
    const hw::DmaModel dma(config);
    const hw::NttEngine &engine = rpau.nttEngine();
    const auto levels = recordLevels(compiled);
    const auto levelOf = [&](hw::PolyId id) -> size_t {
        const auto it = levels.find(id);
        return it == levels.end() ? 0 : it->second;
    };

    CircuitAttribution out;
    out.node_cycles.assign(compiled.value_sizes.size(), 0);

    const auto computeCycles = [&](const hw::Instruction &instr) {
        switch (instr.op) {
          case hw::Opcode::kNtt:
            return engine.forwardCycles();
          case hw::Opcode::kIntt:
            return engine.inverseCycles();
          case hw::Opcode::kCoeffMul:
          case hw::Opcode::kCoeffAdd:
          case hw::Opcode::kCoeffSub:
            return rpau.coeffUnit().cycles(params.degree());
          case hw::Opcode::kRearrange:
            return engine.rearrangeCycles();
          case hw::Opcode::kAutomorph:
            return engine.automorphCycles();
          case hw::Opcode::kLift:
            return lift.cycles(levelOf(instr.dst));
          case hw::Opcode::kScale:
            return scale.cycles(levelOf(instr.src0));
          case hw::Opcode::kModSwitch:
            return scale.modSwitchCycles(levelOf(instr.src0));
          case hw::Opcode::kKeyLoad:
            return hw::Cycle{0};
        }
        panic("unknown opcode");
    };

    for (size_t s = 0; s < compiled.segments.size(); ++s) {
        const hw::Program &program = compiled.segments[s].program;
        const std::vector<ValueId> *tags =
            s < compiled.instr_nodes.size() ? &compiled.instr_nodes[s]
                                            : nullptr;
        for (size_t k = 0; k < program.instrs.size(); ++k) {
            const hw::Instruction &instr = program.instrs[k];
            const hw::Cycle cycles = computeCycles(instr);
            out.compute_cycles += cycles;
            out.unit_cycles[static_cast<size_t>(hw::unitOf(instr.op))] +=
                cycles;
            out.op_cycles[instr.op] += cycles;
            if (tags != nullptr && k < tags->size() &&
                (*tags)[k] != kNoValue)
                out.node_cycles[(*tags)[k]] += cycles;
            if (instr.op == hw::Opcode::kKeyLoad) {
                // Mirror of Coprocessor::instructionDmaUs: one key pair,
                // two level-truncated q polynomials.
                size_t live = params.qBase()->size();
                if (!instr.extra.empty())
                    live = params.qPrimeCount(levelOf(instr.extra[0]));
                const size_t bytes =
                    live * params.degree() * sizeof(uint32_t);
                out.key_dma_us += 2.0 * dma.transferUs(bytes);
            }
        }
        if (!program.instrs.empty()) {
            const auto dispatch =
                static_cast<hw::Cycle>(config.dispatch_overhead);
            out.dispatch_cycles += dispatch;
            out.unit_cycles[static_cast<size_t>(hw::Unit::kArmUnit)] +=
                dispatch;
        }
    }
    out.total_cycles = out.compute_cycles + out.dispatch_cycles;
    return out;
}

} // namespace heat::compiler
