/**
 * @file
 * Noise-budget propagation pass over ciphertext circuits.
 *
 * The paper sizes its parameter set for multiplicative depth 4
 * (Sec. III-A); fv::NoiseModel reproduces that sizing decision as
 * closed-form per-operation bounds. This pass walks a Circuit in
 * definition order, propagates the predicted log-noise through every
 * node kind (additions, plain operands, tensors, relinearizations,
 * rotations and rotate-sums) and annotates each value with its
 * predicted remaining invariant-noise budget in bits.
 *
 * compileCircuit() runs the pass on every compilation and, depending
 * on CompilerOptions::noise_check, ignores the estimate, warns, or
 * rejects circuits whose predicted budget goes non-positive — with a
 * diagnostic naming the first exhausted node, so a depth-5 squaring
 * chain on a depth-4 parameter set fails at compile time instead of
 * decrypting to garbage after a full accelerator run.
 *
 * The model is a conservative design heuristic, not a proof: measured
 * budgets (fv::Decryptor::invariantNoiseBudget) run higher; tests
 * compare the two with slack.
 */

#ifndef HEAT_COMPILER_NOISE_PASS_H
#define HEAT_COMPILER_NOISE_PASS_H

#include <string>
#include <vector>

#include "compiler/circuit.h"
#include "fv/noise.h"
#include "fv/params.h"

namespace heat::compiler {

/** Per-node noise prediction for one circuit. */
struct NoiseEstimate
{
    /** Predicted remaining budget (bits, clamped >= 0) per value id. */
    std::vector<double> budget_bits;
    /** Ciphertext level per value id (valueLevels of the circuit). */
    std::vector<size_t> levels;
    /** First node whose predicted budget is exhausted (definition
     *  order), or kNoValue if every node keeps a positive budget. */
    ValueId first_exhausted = kNoValue;
    /** Minimum predicted budget over the circuit's output values. */
    double min_output_budget_bits = 0.0;
    /** Which inequality family produced the estimate. */
    fv::NoiseBound bound = fv::NoiseBound::kWorstCase;

    /** @return true when every node keeps a positive predicted budget. */
    bool ok() const { return first_exhausted == kNoValue; }
};

/**
 * Propagate fv::NoiseModel's per-op bounds through @p circuit
 * (assumed valid). Inputs are modeled as fresh encryptions — the
 * compile-once/submit-many serving path feeds freshly encrypted
 * operands; callers submitting already-computed ciphertexts keep the
 * slack their inputs already spent. Every step is evaluated at the
 * node's structurally-propagated level (valueLevels), so mod-switched
 * circuits are annotated with their per-level budgets.
 */
NoiseEstimate estimateCircuitNoise(
    std::shared_ptr<const fv::FvParams> params, const Circuit &circuit,
    fv::NoiseBound bound = fv::NoiseBound::kWorstCase);

/**
 * Human-readable account of an exhausted estimate: names the first
 * exhausted node (index, kind, multiplicative depth and ciphertext
 * level — i.e. where in the modulus chain the budget died), the fresh
 * budget it started from and the circuit's depth. Suggests
 * CompilerOptions::auto_mod_switch when the circuit has no mod-switch
 * nodes yet. Empty when ok().
 */
std::string noiseDiagnostic(std::shared_ptr<const fv::FvParams> params,
                            const Circuit &circuit,
                            const NoiseEstimate &estimate);

/**
 * The automatic level-assignment pass (CompilerOptions::auto_mod_switch).
 *
 * Walks the DAG in definition order and returns a transformed circuit
 * with kModSwitch nodes inserted at the noise-cheapest points: after
 * each relinearization (the canonical drop point — the 3-element value
 * is gone and the key-switch noise has already been paid at the wider
 * modulus) the value greedily drops to the deepest level whose
 * predicted budget still covers the rest of its multiply chain with
 * ~10 bits of margin, and two-operand joins align their operands by
 * switching the shallower one down. Planning uses @p bound
 * (average-case by default — the worst-case l_1 bounds are so
 * pessimistic that no assignment can ever gain depth under them).
 *
 * The pass only inserts drops it predicts to be safe; it never
 * rejects. Run estimateCircuitNoise on the result to decide
 * acceptance — compileCircuit does exactly that.
 */
Circuit insertModSwitches(
    const Circuit &circuit, std::shared_ptr<const fv::FvParams> params,
    fv::NoiseBound bound = fv::NoiseBound::kAverageCase);

} // namespace heat::compiler

#endif // HEAT_COMPILER_NOISE_PASS_H
