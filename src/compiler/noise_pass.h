/**
 * @file
 * Noise-budget propagation pass over ciphertext circuits.
 *
 * The paper sizes its parameter set for multiplicative depth 4
 * (Sec. III-A); fv::NoiseModel reproduces that sizing decision as
 * closed-form per-operation bounds. This pass walks a Circuit in
 * definition order, propagates the predicted log-noise through every
 * node kind (additions, plain operands, tensors, relinearizations,
 * rotations and rotate-sums) and annotates each value with its
 * predicted remaining invariant-noise budget in bits.
 *
 * compileCircuit() runs the pass on every compilation and, depending
 * on CompilerOptions::noise_check, ignores the estimate, warns, or
 * rejects circuits whose predicted budget goes non-positive — with a
 * diagnostic naming the first exhausted node, so a depth-5 squaring
 * chain on a depth-4 parameter set fails at compile time instead of
 * decrypting to garbage after a full accelerator run.
 *
 * The model is a conservative design heuristic, not a proof: measured
 * budgets (fv::Decryptor::invariantNoiseBudget) run higher; tests
 * compare the two with slack.
 */

#ifndef HEAT_COMPILER_NOISE_PASS_H
#define HEAT_COMPILER_NOISE_PASS_H

#include <string>
#include <vector>

#include "compiler/circuit.h"
#include "fv/noise.h"
#include "fv/params.h"

namespace heat::compiler {

/** Per-node noise prediction for one circuit. */
struct NoiseEstimate
{
    /** Predicted remaining budget (bits, clamped >= 0) per value id. */
    std::vector<double> budget_bits;
    /** First node whose predicted budget is exhausted (definition
     *  order), or kNoValue if every node keeps a positive budget. */
    ValueId first_exhausted = kNoValue;
    /** Minimum predicted budget over the circuit's output values. */
    double min_output_budget_bits = 0.0;

    /** @return true when every node keeps a positive predicted budget. */
    bool ok() const { return first_exhausted == kNoValue; }
};

/**
 * Propagate fv::NoiseModel's per-op bounds through @p circuit
 * (assumed valid). Inputs are modeled as fresh encryptions — the
 * compile-once/submit-many serving path feeds freshly encrypted
 * operands; callers submitting already-computed ciphertexts keep the
 * slack their inputs already spent.
 */
NoiseEstimate estimateCircuitNoise(
    std::shared_ptr<const fv::FvParams> params, const Circuit &circuit);

/**
 * Human-readable account of an exhausted estimate: names the first
 * exhausted node (index, kind, multiplicative depth), the fresh
 * budget it started from and the circuit's depth. Empty when ok().
 */
std::string noiseDiagnostic(std::shared_ptr<const fv::FvParams> params,
                            const Circuit &circuit,
                            const NoiseEstimate &estimate);

} // namespace heat::compiler

#endif // HEAT_COMPILER_NOISE_PASS_H
