/**
 * @file
 * Ciphertext-level expression DAGs.
 *
 * A Circuit is a straight-line SSA program over encrypted values: node
 * i defines value i, inputs are explicit nodes, and plaintext operands
 * live in a constant pool. CircuitBuilder is the user-facing way to
 * grow one; fv::Evaluator provides the scalar reference semantics of
 * every node kind, and evaluateCircuit() runs a circuit op-by-op
 * through it — the golden model the hardware compiler (compiler.h) is
 * differentially tested against.
 *
 * Rotations (kRotate/kRotateColumns/kRotateSum) lower onto the
 * hardware automorphism datapath; several rotations of one value form
 * a hoist group sharing the key-switch decompose (see
 * rotationHoistGroupSizes and compiler.h's CompilerOptions).
 *
 * Multiplication is split FV-style: kMult/kSquare produce a 3-element
 * ciphertext (the scaled tensor), kRelin reduces it back to 2 elements.
 * The builder's mult()/square() conveniences chain both. A 3-element
 * value may feed exactly one kRelin node and/or be a circuit output;
 * every other use is rejected by validate() — which is what lets the
 * hardware compiler always fuse the relinearization tail into its
 * producer's schedule (the digit broadcast during Scale writeback is
 * free, materializing WordDecomp digits for a *detached* consumer is
 * not an ISA operation).
 */

#ifndef HEAT_COMPILER_CIRCUIT_H
#define HEAT_COMPILER_CIRCUIT_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "fv/evaluator.h"
#include "fv/keys.h"

namespace heat::compiler {

/** Identifier of a circuit value (the index of its defining node). */
using ValueId = uint32_t;

/** Sentinel for "no value". */
constexpr ValueId kNoValue = ~ValueId(0);

/** Circuit node kinds (each mirrors one fv::Evaluator operation). */
enum class NodeKind : uint8_t
{
    kInput,     ///< external ciphertext (size 2)
    kAdd,       ///< FV.Add
    kSub,       ///< FV.Sub
    kNegate,    ///< negation
    kAddPlain,  ///< ct + Delta * plain
    kMultPlain, ///< ct * plain (NTT pointwise, no relinearization)
    kMult,      ///< tensor + scale: 3-element result (no relin)
    kSquare,    ///< tensor of a value with itself: 3-element result
    kRelin,     ///< relinearize a 3-element value back to 2 elements
    kRotate,    ///< rotate batched slot rows by `steps` (Galois + switch)
    kRotateColumns, ///< swap the two slot columns (element 2n - 1)
    kRotateSum, ///< rotate-and-add total sum across all slots
    kModSwitch  ///< drop the last live q prime (level + 1)
};

/** @return a printable name. */
const char *nodeKindName(NodeKind kind);

/** @return ciphertext operand count of a node kind (0, 1 or 2). */
int nodeArgCount(NodeKind kind);

/** One node: the operation defining one value. */
struct CircuitNode
{
    NodeKind kind = NodeKind::kInput;
    /** Operand values (unused entries are kNoValue). */
    std::array<ValueId, 2> args{kNoValue, kNoValue};
    /** Index into Circuit::plains (kAddPlain/kMultPlain only). */
    int32_t plain = -1;
    /** Slot-rotation step count (kRotate only; nonzero). The Galois
     *  element is resolved against the parameter set's degree at
     *  compile/evaluation time — see rotationElement(). */
    int32_t steps = 0;

    bool operator==(const CircuitNode &o) const = default;
};

/** A whole expression DAG in topological (definition) order. */
struct Circuit
{
    /** Node i defines value i; arguments always precede their uses. */
    std::vector<CircuitNode> nodes;
    /** Plaintext constant pool. */
    std::vector<fv::Plaintext> plains;
    /** Input values in submission order. */
    std::vector<ValueId> inputs;
    /** Values the caller wants back (download set). */
    std::vector<ValueId> outputs;

    /** @return ciphertext element count of @p v (3 for kMult/kSquare). */
    size_t valueSize(ValueId v) const;

    /** @return number of non-input nodes. */
    size_t opCount() const { return nodes.size() - inputs.size(); }

    /**
     * Check structural well-formedness: topological argument order,
     * operand sizes (element-wise ops take 2-element values, kRelin a
     * 3-element one), at most one kRelin consumer per 3-element value
     * and no other consumers besides the output set, valid plain
     * indices, at least one output. Throws FatalError on violation.
     */
    void validate() const;
};

/** Incrementally grows a Circuit. */
class CircuitBuilder
{
  public:
    /** Declare the next external ciphertext input. */
    ValueId input();

    ValueId add(ValueId a, ValueId b);
    ValueId sub(ValueId a, ValueId b);
    ValueId negate(ValueId a);
    ValueId addPlain(ValueId a, fv::Plaintext plain);
    ValueId multPlain(ValueId a, fv::Plaintext plain);

    /** Rotate batched slot rows by @p steps (negative rotates the
     *  other way; step 0 folds to the identity and returns @p a
     *  itself). Lowers to the hardware automorphism datapath;
     *  multiple rotations of one value share the key-switch decompose
     *  (hoisting). Steps congruent modulo the slot-row length resolve
     *  to the same Galois element — and thus the same key — at
     *  compile/evaluation time. */
    ValueId rotate(ValueId a, int32_t steps);

    /** Swap the two batching slot columns (Galois element 2n - 1). */
    ValueId rotateColumns(ValueId a);

    /** Total sum across all slots: afterwards every slot holds the
     *  sum (rotate-and-add, matching fv::Evaluator::sumAllSlots). */
    ValueId rotateSum(ValueId a);

    /** Modulus switch @p a one level deeper (drop the last live q
     *  prime). Usually inserted by the compiler's level-assignment
     *  pass (insertModSwitches) rather than written by hand. */
    ValueId modSwitch(ValueId a);

    /** Tensor + scale without relinearization: a 3-element value. */
    ValueId multNoRelin(ValueId a, ValueId b);

    /** Square without relinearization: a 3-element value. */
    ValueId squareNoRelin(ValueId a);

    /** Relinearize a 3-element value back to 2 elements. */
    ValueId relinearize(ValueId a);

    /** multNoRelin + relinearize. */
    ValueId
    mult(ValueId a, ValueId b)
    {
        return relinearize(multNoRelin(a, b));
    }

    /** squareNoRelin + relinearize. */
    ValueId
    square(ValueId a)
    {
        return relinearize(squareNoRelin(a));
    }

    /** Mark @p v as a circuit output (download set; idempotent). */
    void output(ValueId v);

    /** Validate and return the finished circuit (builder is reset). */
    Circuit build();

    /** @return nodes added so far. */
    size_t size() const { return circuit_.nodes.size(); }

  private:
    ValueId addNode(NodeKind kind, ValueId a, ValueId b, int32_t plain);

    /** @return @p a after bounds-checking it against the nodes so far
     *  (used when an operation folds to the identity). */
    ValueId checkedValue(ValueId a) const;

    Circuit circuit_;
};

/** @return true for the single-automorphism node kinds (kRotate and
 *  kRotateColumns) that participate in hoist groups. */
bool isRotationNode(NodeKind kind);

/** @return the Galois element of a kRotate/kRotateColumns node for
 *  ring degree @p degree. */
uint32_t rotationElement(const CircuitNode &node, size_t degree);

/**
 * Per-node hoist-group size: for each kRotate/kRotateColumns node, how
 * many such nodes (including itself) rotate the same input value; 0
 * for every other node kind. Nodes in a group of >= 2 use hoisted
 * key-switch numerics (fv::Evaluator::applyGaloisHoisted) on every
 * execution path — compiled, op-by-op, and evaluateCircuit — so the
 * three stay bit-identical whether or not the compiler shares the
 * decompose.
 */
std::vector<uint32_t> rotationHoistGroupSizes(const Circuit &circuit);

/**
 * Multiplicative depth of the circuit: the longest chain of
 * ciphertext-ciphertext multiplications (kMult/kSquare) from any input
 * to any output. Plain-operand ops, additions, relinearizations and
 * rotations do not add depth. This is the depth the parameter set must
 * support (fv::NoiseModel::supportedDepth).
 */
int multiplicativeDepth(const Circuit &circuit);

/** Per-value multiplicative depth (the recurrence behind
 *  multiplicativeDepth; the noise pass's diagnostics name the depth
 *  of individual nodes from it). */
std::vector<int> multiplicativeDepths(const Circuit &circuit);

/**
 * Per-value ciphertext level, propagated structurally: inputs enter at
 * level 0, kModSwitch adds one, every other node preserves its
 * operands' level. Throws FatalError if a two-operand node joins
 * values at different levels (insertModSwitches aligns operands by
 * switching the shallower one down before the join).
 */
std::vector<size_t> valueLevels(const Circuit &circuit);

/**
 * Number of non-scalar (ciphertext x ciphertext) multiplications —
 * kMult plus kSquare nodes. The figure of merit polynomial-evaluation
 * plans minimize (Paterson-Stockmeyer reaches ~2 sqrt(d) where Horner
 * pays d - 1).
 */
size_t nonScalarMultCount(const Circuit &circuit);

/**
 * Every Galois element whose key-switching keys the circuit needs,
 * sorted ascending: one per kRotate/kRotateColumns node, plus the
 * power-of-two row elements and the column element for each
 * kRotateSum. Generate them with fv::KeyGenerator::generateGaloisKeys.
 */
std::vector<uint32_t> requiredGaloisElements(const Circuit &circuit,
                                             size_t degree);

/**
 * Scalar reference semantics: run @p circuit op-by-op through
 * @p evaluator, returning the output ciphertexts in output order.
 * @p rlk may be null only if the circuit contains no kRelin node;
 * @p gkeys only if it contains no rotation node.
 */
std::vector<fv::Ciphertext> evaluateCircuit(
    const fv::Evaluator &evaluator, const fv::RelinKeys *rlk,
    const Circuit &circuit, std::span<const fv::Ciphertext> inputs,
    const fv::GaloisKeys *gkeys = nullptr);

} // namespace heat::compiler

#endif // HEAT_COMPILER_CIRCUIT_H
