/**
 * @file
 * Circuit compiler: lowers a whole ciphertext expression DAG into one
 * fused coprocessor program with coprocessor-resident intermediates.
 *
 * The single-op serving path round-trips every ciphertext through the
 * host: upload operands, dispatch each instruction from the Arm, and
 * download the result — per operation. compileCircuit() instead
 * schedules the circuit's nodes topologically into segments of one
 * straight-line hw::Program each, allocating memory-file slots by
 * liveness (a value's slots are reclaimed at its last use, so deep
 * circuits reuse the slots of dead intermediates) against a
 * CountingAllocator — pure accounting, so compilation never touches a
 * real coprocessor and the result can run on any worker that replays
 * the recorded slot actions.
 *
 * When the live set exceeds the memory file (n_rpaus * slots_per_rpau
 * slots), the compiler spills: the live value with the farthest next
 * use is DMA'd back to the host (a download appended to the current
 * segment) and its slots are reused; the reload later opens a new
 * segment, because uploads must precede a segment's instruction
 * stream. A circuit that fits on chip therefore compiles to exactly
 * one segment — inputs uploaded once, one Arm dispatch for the whole
 * instruction stream (DispatchMode::kFusedProgram), and only live
 * outputs downloaded; each spill adds one host round trip.
 */

#ifndef HEAT_COMPILER_COMPILER_H
#define HEAT_COMPILER_COMPILER_H

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "compiler/circuit.h"
#include "fv/params.h"
#include "hw/coprocessor.h"
#include "hw/isa.h"
#include "hw/memory_file.h"

namespace heat::compiler {

/** What compileCircuit does with the noise pass's verdict. */
enum class NoiseCheck : uint8_t
{
    kOff,   ///< annotate only, never complain
    kWarn,  ///< annotate and print a one-line warning to stderr
    kReject ///< throw FatalError with the node-level diagnostic
};

/**
 * What compileCircuit does with the static verifier's verdict
 * (verify/verify.h): every compilation can prove its own program
 * respects the memory-file, layout, level and key invariants the
 * runtime assumes.
 */
enum class VerifyCheck : uint8_t
{
    kOff,   ///< skip the pass entirely
    kWarn,  ///< run it; print the diagnostic table to stderr
    kReject ///< run it; throw FatalError carrying the table
};

/**
 * @return the process default for CompilerOptions::verify — kWarn, or
 * the HEAT_VERIFY environment override ("off" / "warn" / "reject"),
 * read once.
 */
VerifyCheck defaultVerifyCheck();

/** Compilation tunables. */
struct CompilerOptions
{
    /** Target hardware configuration (slot capacity, clocks). */
    hw::HwConfig hw = hw::HwConfig::paper();
    /**
     * Share the key-switch decompose (WordDecomp + forward NTTs of the
     * digits) across all rotations of one ciphertext — HEAX-style
     * hoisting. Only affects scheduling: group members use hoisted
     * numerics either way, so results are bit-identical with the flag
     * off (each rotation then re-decomposes privately, which is what
     * the hoisting benchmark compares against).
     */
    bool hoist_rotations = true;
    /**
     * Noise-budget propagation (noise_pass.h): every compilation
     * annotates CompiledCircuit::noise_budget_bits; this knob decides
     * whether a circuit whose predicted budget is exhausted before its
     * outputs compiles anyway. The default warns — existing pipelines
     * keep compiling, but a depth-over-budget program is named at
     * compile time rather than discovered as a garbage decryption.
     */
    NoiseCheck noise_check = NoiseCheck::kWarn;
    /**
     * Static verification of the compiled artifact (verify/verify.h):
     * after lowering, an abstract interpreter proves the emitted
     * program's slot, layout, level, key and liveness invariants. The
     * pass costs a few percent of compile time; the default warns so a
     * miscompiled program is named at compile time instead of decrypting
     * to garbage. Overridable per process with HEAT_VERIFY=off|warn|
     * reject (the sanitizer CI leg runs under reject).
     */
    VerifyCheck verify = defaultVerifyCheck();
    /**
     * Automatic level assignment (noise_pass.h, insertModSwitches):
     * before lowering, walk the DAG and insert kModSwitch drops at the
     * noise-cheapest points, then compile the transformed circuit —
     * deeper values run over fewer live RNS primes, shrinking the
     * Lift/Scale chains, relin digit loads and DMA bursts. The noise
     * annotation switches to the average-case bound (the one the
     * assignment plans with); rejection under NoiseCheck::kReject then
     * means no level assignment can save the circuit. Off by default:
     * the depth-4 level-0 story of the paper is unchanged unless asked
     * for.
     */
    bool auto_mod_switch = false;
    /**
     * Input positions (indices into the circuit's input submission
     * order) whose ciphertexts are coprocessor-resident. The compiler
     * allocates their slot pairs FIRST — so they form a stable
     * record-id prefix a warm coprocessor already holds — and never
     * spills, consumes, demotes or releases them; no upload Transfer is
     * ever emitted for them. The serving layer pins the prefix across
     * requests (hw::MemoryFile::setPinnedRecords) so repeat executions
     * of the same circuit skip the operand DMA entirely — see
     * runCompiledCircuitWarm().
     */
    std::vector<uint32_t> resident_inputs;
};

/** One host<->coprocessor polynomial transfer. */
struct Transfer
{
    enum class Source : uint8_t
    {
        kValue,   ///< a circuit value's polynomial
        kConstant ///< an encoded plaintext from the constant pool
    };

    Source source = Source::kValue;
    /** ValueId, or index into CompiledCircuit::constants. */
    uint32_t index = 0;
    /** Polynomial within the value (always 0 for constants). */
    uint32_t poly = 0;
    /** Memory-file slot. */
    hw::PolyId slot = hw::kNoPoly;

    bool operator==(const Transfer &o) const = default;
};

/**
 * One dispatch unit: uploads staged before the program runs, a fused
 * straight-line instruction stream, downloads (spill stores and final
 * outputs) after it completes.
 */
struct Segment
{
    std::vector<Transfer> uploads;
    hw::Program program;
    std::vector<Transfer> downloads;
};

/**
 * A lowered circuit: segments plus the slot-action log that replays
 * the compiler's deterministic memory-file allocation on any freshly
 * reset coprocessor. A plain value — share it across workers.
 */
struct CompiledCircuit
{
    std::shared_ptr<const fv::FvParams> params;
    hw::HwConfig hw;

    std::vector<Segment> segments;
    /** Allocation log; replaySlotActions() materializes the slots. */
    std::vector<hw::SlotAction> slot_actions;
    /** Host-encoded plaintext operands (uploaded like inputs). */
    std::vector<ntt::RnsPoly> constants;

    /**
     * The circuit that was actually lowered: the caller's circuit, or
     * its insertModSwitches transform under auto_mod_switch. All value
     * ids below index into THIS circuit — run evaluateCircuit or
     * runCircuitOpByOp on it to reproduce the compiled program's
     * results bit for bit.
     */
    Circuit circuit;

    /** Input values in submission order. */
    std::vector<ValueId> inputs;
    /** Output values in download order. */
    std::vector<ValueId> outputs;
    /** Ciphertext element count per value id. */
    std::vector<uint32_t> value_sizes;
    /** Ciphertext level per value id (all zero without mod-switches). */
    std::vector<uint32_t> value_levels;
    /** Galois elements whose keys the executing coprocessor must hold
     *  (sorted ascending; empty for rotation-free circuits). */
    std::vector<uint32_t> galois_elements;

    // --- cycle attribution (see attribution.h) -------------------------
    /** Per segment, per instruction: the circuit node whose emission
     *  produced the instruction (kNoValue for bookkeeping such as the
     *  shared zero slot). Parallel to segments[s].program.instrs. */
    std::vector<std::vector<ValueId>> instr_nodes;
    /** Attributed modeled compute cycles per value id: each node's
     *  share of a fused execution's fpga_cycles (dispatch overhead
     *  excluded — it belongs to segments, not nodes). */
    std::vector<hw::Cycle> node_cycles;

    // --- resident operand cache (CompilerOptions::resident_inputs) -----
    /** Input positions compiled as coprocessor-resident (ascending). */
    std::vector<uint32_t> resident_inputs;
    /** Pinned memory-file slot pair per resident input; these are the
     *  first 2*resident_inputs.size() record ids. */
    std::vector<std::array<hw::PolyId, 2>> resident_slots;
    /** Leading slot_actions that materialize the resident prefix; a
     *  warm replay resumes after them (resetToPinned keeps the rest). */
    size_t resident_action_count = 0;

    // --- noise annotation (see noise_pass.h) ---------------------------
    /** Predicted remaining invariant-noise budget (bits) per value id,
     *  assuming fresh-encryption inputs. */
    std::vector<double> noise_budget_bits;
    /** Minimum predicted budget over the output values. */
    double min_output_noise_budget_bits = 0.0;
    /** First value with exhausted predicted budget (kNoValue if none;
     *  with CompilerOptions::NoiseCheck::kReject compilation throws
     *  instead of ever producing such a circuit). */
    ValueId noise_exhausted_node = kNoValue;

    // --- compile-time accounting ---------------------------------------
    /** Memory-file high-water mark (slots). */
    size_t peak_slots = 0;
    /** Polynomials DMA'd back to the host under slot pressure. */
    size_t spilled_polys = 0;
    /** Polynomials re-uploaded after a spill. */
    size_t reloaded_polys = 0;

    /** @return total instruction count across segments. */
    size_t instructionCount() const;
};

/**
 * Lower @p circuit for the hardware configuration in @p options.
 * Throws FatalError when the circuit is malformed or a single node
 * cannot fit the memory file even after spilling everything else
 * (the message reports the slot pressure and the requesting op).
 */
CompiledCircuit compileCircuit(std::shared_ptr<const fv::FvParams> params,
                               const Circuit &circuit,
                               const CompilerOptions &options = {});

/** Modeled cost of one circuit execution. */
struct CircuitRunStats
{
    hw::Cycle fpga_cycles = 0;
    double dma_us = 0.0;
    double host_us = 0.0;
    /** fpga_cycles bucketed by functional unit (index by hw::Unit);
     *  sums exactly to fpga_cycles. */
    std::array<hw::Cycle, hw::kUnitCount> unit_cycles{};
    uint64_t instructions = 0;
    /** Arm dispatches charged (fused: one per segment's program). */
    uint64_t dispatches = 0;
    size_t segments = 0;
    size_t uploaded_polys = 0;
    size_t downloaded_polys = 0;

    /** Modeled end-to-end time (us). */
    double
    modeledUs(const hw::HwConfig &config) const
    {
        return config.cyclesToUs(fpga_cycles) + dma_us + host_us;
    }
};

/**
 * Execute a compiled circuit on @p cp (which must hold the matching
 * relinearization keys when the circuit relinearizes). Resets the
 * coprocessor, replays the slot actions, then runs every segment:
 * upload, one fused dispatch, download. Returns the output
 * ciphertexts in output order; bit-exact with evaluateCircuit() over
 * the HPS evaluator.
 */
std::vector<fv::Ciphertext> runCompiledCircuit(
    hw::Coprocessor &cp, const CompiledCircuit &compiled,
    std::span<const fv::Ciphertext> inputs,
    CircuitRunStats *stats = nullptr);

/**
 * Warm execution of a circuit compiled with
 * CompilerOptions::resident_inputs: the coprocessor must already hold
 * the circuit's pinned record prefix from a prior (cold)
 * runCompiledCircuit of the SAME compiled circuit — the cold pass pins
 * it via hw::MemoryFile::setPinnedRecords. The pinned operands are
 * neither validated nor uploaded (that's the point: their DMA cost is
 * paid once, on the cold pass); @p request_inputs supplies only the
 * non-resident inputs, in position order with the resident positions
 * skipped. Results are bit-identical to the cold pass. The caller is
 * responsible for circuit identity — the pinned-record count is
 * sanity-checked, but running circuit B warm over circuit A's pins with
 * the same prefix size computes over A's operands.
 */
std::vector<fv::Ciphertext> runCompiledCircuitWarm(
    hw::Coprocessor &cp, const CompiledCircuit &compiled,
    std::span<const fv::Ciphertext> request_inputs,
    CircuitRunStats *stats = nullptr);

/**
 * Reference execution model of the *unfused* serving path: every node
 * becomes its own host round trip (operands uploaded, the node's
 * program dispatched per instruction, results downloaded), with a
 * kRelin folded into its producer like the single-op Mult plan.
 * Functionally identical to runCompiledCircuit(); the modeled time is
 * what circuit fusion is benchmarked against.
 */
std::vector<fv::Ciphertext> runCircuitOpByOp(
    hw::Coprocessor &cp, std::shared_ptr<const fv::FvParams> params,
    const Circuit &circuit, std::span<const fv::Ciphertext> inputs,
    CircuitRunStats *stats = nullptr);

} // namespace heat::compiler

#endif // HEAT_COMPILER_COMPILER_H
