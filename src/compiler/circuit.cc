#include "compiler/circuit.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/panic.h"
#include "fv/galois.h"

namespace heat::compiler {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::kInput:
        return "Input";
      case NodeKind::kAdd:
        return "Add";
      case NodeKind::kSub:
        return "Sub";
      case NodeKind::kNegate:
        return "Negate";
      case NodeKind::kAddPlain:
        return "AddPlain";
      case NodeKind::kMultPlain:
        return "MultPlain";
      case NodeKind::kMult:
        return "Mult";
      case NodeKind::kSquare:
        return "Square";
      case NodeKind::kRelin:
        return "Relin";
      case NodeKind::kRotate:
        return "Rotate";
      case NodeKind::kRotateColumns:
        return "RotateColumns";
      case NodeKind::kRotateSum:
        return "RotateSum";
      case NodeKind::kModSwitch:
        return "ModSwitch";
    }
    panic("unknown node kind");
}

int
nodeArgCount(NodeKind kind)
{
    switch (kind) {
      case NodeKind::kInput:
        return 0;
      case NodeKind::kAdd:
      case NodeKind::kSub:
      case NodeKind::kMult:
        return 2;
      default:
        return 1;
    }
}

namespace {

bool
isThreeElement(NodeKind kind)
{
    return kind == NodeKind::kMult || kind == NodeKind::kSquare;
}

} // namespace

size_t
Circuit::valueSize(ValueId v) const
{
    panicIf(v >= nodes.size(), "value id out of range");
    return isThreeElement(nodes[v].kind) ? 3 : 2;
}

void
Circuit::validate() const
{
    fatalIf(outputs.empty(), "circuit has no outputs");
    fatalIf(nodes.empty(), "circuit has no nodes");

    size_t seen_inputs = 0;
    std::vector<int> relin_consumers(nodes.size(), 0);
    std::vector<int> other_consumers(nodes.size(), 0);
    for (size_t i = 0; i < nodes.size(); ++i) {
        const CircuitNode &node = nodes[i];
        if (node.kind == NodeKind::kInput) {
            fatalIf(seen_inputs >= inputs.size() ||
                        inputs[seen_inputs] != static_cast<ValueId>(i),
                    "circuit input list does not match the input nodes");
            ++seen_inputs;
        }
        for (int a = 0; a < nodeArgCount(node.kind); ++a) {
            const ValueId arg = node.args[a];
            fatalIf(arg >= i, "node ", i, " (", nodeKindName(node.kind),
                    ") uses value ", arg,
                    " that is not defined before it");
            if (node.kind == NodeKind::kRelin)
                ++relin_consumers[arg];
            else
                ++other_consumers[arg];
            const bool needs3 = node.kind == NodeKind::kRelin;
            fatalIf((valueSize(arg) == 3) != needs3, "node ", i, " (",
                    nodeKindName(node.kind), ") cannot consume the ",
                    valueSize(arg), "-element value ", arg,
                    needs3 ? " (relinearize expects a 3-element value)"
                           : " (relinearize it first)");
        }
        if (node.kind == NodeKind::kAddPlain ||
            node.kind == NodeKind::kMultPlain) {
            fatalIf(node.plain < 0 ||
                        static_cast<size_t>(node.plain) >= plains.size(),
                    "node ", i, " references plaintext ", node.plain,
                    " outside the constant pool");
        }
        if (node.kind == NodeKind::kRotate)
            fatalIf(node.steps == 0,
                    "node ", i, " rotates by zero steps");
    }
    fatalIf(seen_inputs != inputs.size(),
            "circuit input list does not match the input nodes");

    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!isThreeElement(nodes[i].kind))
            continue;
        fatalIf(relin_consumers[i] > 1, "3-element value ", i,
                " feeds more than one relinearization");
        fatalIf(other_consumers[i] > 0, "3-element value ", i,
                " must be relinearized before other use");
    }

    for (ValueId out : outputs)
        fatalIf(out >= nodes.size(), "output value ", out,
                " is not defined");
}

ValueId
CircuitBuilder::checkedValue(ValueId a) const
{
    fatalIf(a >= circuit_.nodes.size(),
            "Rotate uses an undefined value");
    return a;
}

ValueId
CircuitBuilder::addNode(NodeKind kind, ValueId a, ValueId b, int32_t plain)
{
    CircuitNode node;
    node.kind = kind;
    node.args = {a, b};
    node.plain = plain;
    for (int i = 0; i < nodeArgCount(kind); ++i)
        fatalIf(node.args[i] >= circuit_.nodes.size(),
                nodeKindName(kind), " uses an undefined value");
    circuit_.nodes.push_back(node);
    return static_cast<ValueId>(circuit_.nodes.size() - 1);
}

ValueId
CircuitBuilder::input()
{
    const ValueId v = addNode(NodeKind::kInput, kNoValue, kNoValue, -1);
    circuit_.inputs.push_back(v);
    return v;
}

ValueId
CircuitBuilder::add(ValueId a, ValueId b)
{
    return addNode(NodeKind::kAdd, a, b, -1);
}

ValueId
CircuitBuilder::sub(ValueId a, ValueId b)
{
    return addNode(NodeKind::kSub, a, b, -1);
}

ValueId
CircuitBuilder::negate(ValueId a)
{
    return addNode(NodeKind::kNegate, a, kNoValue, -1);
}

ValueId
CircuitBuilder::addPlain(ValueId a, fv::Plaintext plain)
{
    circuit_.plains.push_back(std::move(plain));
    return addNode(NodeKind::kAddPlain, a, kNoValue,
                   static_cast<int32_t>(circuit_.plains.size() - 1));
}

ValueId
CircuitBuilder::multPlain(ValueId a, fv::Plaintext plain)
{
    circuit_.plains.push_back(std::move(plain));
    return addNode(NodeKind::kMultPlain, a, kNoValue,
                   static_cast<int32_t>(circuit_.plains.size() - 1));
}

ValueId
CircuitBuilder::rotate(ValueId a, int32_t steps)
{
    // Step 0 is the identity permutation: fold it away instead of
    // emitting a node that would lower to a pointless (or
    // missing-key-failing) key-switch. Steps that are a nonzero
    // multiple of the slot-row length also resolve to the identity,
    // but only at element-resolution time (the row length depends on
    // the ring degree, which the builder does not know) — those nodes
    // lower to plain copies; see rotationElement().
    if (steps == 0)
        return checkedValue(a);
    const ValueId v = addNode(NodeKind::kRotate, a, kNoValue, -1);
    circuit_.nodes.back().steps = steps;
    return v;
}

ValueId
CircuitBuilder::rotateColumns(ValueId a)
{
    return addNode(NodeKind::kRotateColumns, a, kNoValue, -1);
}

ValueId
CircuitBuilder::rotateSum(ValueId a)
{
    return addNode(NodeKind::kRotateSum, a, kNoValue, -1);
}

ValueId
CircuitBuilder::modSwitch(ValueId a)
{
    return addNode(NodeKind::kModSwitch, a, kNoValue, -1);
}

ValueId
CircuitBuilder::multNoRelin(ValueId a, ValueId b)
{
    // A value tensored with itself is a square; routing it here keeps
    // the hardware schedule (2 lifts, not 4) and the reference
    // semantics (multiply(x, x) == square(x)) aligned.
    if (a == b)
        return squareNoRelin(a);
    return addNode(NodeKind::kMult, a, b, -1);
}

ValueId
CircuitBuilder::squareNoRelin(ValueId a)
{
    return addNode(NodeKind::kSquare, a, kNoValue, -1);
}

ValueId
CircuitBuilder::relinearize(ValueId a)
{
    return addNode(NodeKind::kRelin, a, kNoValue, -1);
}

void
CircuitBuilder::output(ValueId v)
{
    fatalIf(v >= circuit_.nodes.size(), "output of an undefined value");
    for (ValueId existing : circuit_.outputs) {
        if (existing == v)
            return;
    }
    circuit_.outputs.push_back(v);
}

Circuit
CircuitBuilder::build()
{
    Circuit circuit = std::move(circuit_);
    circuit_ = Circuit{};
    circuit.validate();
    return circuit;
}

bool
isRotationNode(NodeKind kind)
{
    return kind == NodeKind::kRotate || kind == NodeKind::kRotateColumns;
}

uint32_t
rotationElement(const CircuitNode &node, size_t degree)
{
    switch (node.kind) {
      case NodeKind::kRotate:
        return fv::galoisElementForStep(node.steps, degree);
      case NodeKind::kRotateColumns:
        return static_cast<uint32_t>(2 * degree - 1);
      default:
        panic("node has no Galois element");
    }
}

std::vector<uint32_t>
rotationHoistGroupSizes(const Circuit &circuit)
{
    std::map<ValueId, uint32_t> per_input;
    for (const CircuitNode &node : circuit.nodes) {
        if (isRotationNode(node.kind))
            ++per_input[node.args[0]];
    }
    std::vector<uint32_t> sizes(circuit.nodes.size(), 0);
    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        if (isRotationNode(circuit.nodes[i].kind))
            sizes[i] = per_input[circuit.nodes[i].args[0]];
    }
    return sizes;
}

std::vector<int>
multiplicativeDepths(const Circuit &circuit)
{
    std::vector<int> depth(circuit.nodes.size(), 0);
    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        const CircuitNode &node = circuit.nodes[i];
        int d = 0;
        for (int a = 0; a < nodeArgCount(node.kind); ++a)
            d = std::max(d, depth[node.args[a]]);
        if (node.kind == NodeKind::kMult ||
            node.kind == NodeKind::kSquare)
            ++d;
        depth[i] = d;
    }
    return depth;
}

std::vector<size_t>
valueLevels(const Circuit &circuit)
{
    std::vector<size_t> levels(circuit.nodes.size(), 0);
    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        const CircuitNode &node = circuit.nodes[i];
        const int argc = nodeArgCount(node.kind);
        size_t level = 0;
        if (argc >= 1)
            level = levels[node.args[0]];
        if (argc == 2) {
            fatalIf(levels[node.args[1]] != level, "node ", i, " (",
                    nodeKindName(node.kind), ") joins value ",
                    node.args[0], " at level ", level, " with value ",
                    node.args[1], " at level ", levels[node.args[1]],
                    "; mod-switch the shallower operand first");
        }
        if (node.kind == NodeKind::kModSwitch)
            ++level;
        levels[i] = level;
    }
    return levels;
}

int
multiplicativeDepth(const Circuit &circuit)
{
    const std::vector<int> depths = multiplicativeDepths(circuit);
    return depths.empty()
               ? 0
               : *std::max_element(depths.begin(), depths.end());
}

size_t
nonScalarMultCount(const Circuit &circuit)
{
    size_t count = 0;
    for (const CircuitNode &node : circuit.nodes) {
        if (node.kind == NodeKind::kMult ||
            node.kind == NodeKind::kSquare)
            ++count;
    }
    return count;
}

std::vector<uint32_t>
requiredGaloisElements(const Circuit &circuit, size_t degree)
{
    std::vector<uint32_t> elements;
    for (const CircuitNode &node : circuit.nodes) {
        if (isRotationNode(node.kind)) {
            // Element 1 rotations (steps that normalize to zero) are
            // identity copies and need no key.
            const uint32_t g = rotationElement(node, degree);
            if (g != 1)
                elements.push_back(g);
        } else if (node.kind == NodeKind::kRotateSum) {
            for (size_t step = 1; step <= degree / 4; step *= 2) {
                elements.push_back(fv::galoisElementForStep(
                    static_cast<int>(step), degree));
            }
            elements.push_back(static_cast<uint32_t>(2 * degree - 1));
        }
    }
    std::sort(elements.begin(), elements.end());
    elements.erase(std::unique(elements.begin(), elements.end()),
                   elements.end());
    return elements;
}

std::vector<fv::Ciphertext>
evaluateCircuit(const fv::Evaluator &evaluator, const fv::RelinKeys *rlk,
                const Circuit &circuit,
                std::span<const fv::Ciphertext> inputs,
                const fv::GaloisKeys *gkeys)
{
    circuit.validate();
    fatalIf(inputs.size() != circuit.inputs.size(),
            "circuit expects ", circuit.inputs.size(), " inputs, got ",
            inputs.size());

    const std::vector<uint32_t> hoist_sizes =
        rotationHoistGroupSizes(circuit);
    const auto needGalois = [&]() -> const fv::GaloisKeys & {
        fatalIf(gkeys == nullptr,
                "circuit rotates but no Galois keys were given");
        return *gkeys;
    };

    std::vector<fv::Ciphertext> values(circuit.nodes.size());
    size_t next_input = 0;
    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        const CircuitNode &node = circuit.nodes[i];
        const ValueId a = node.args[0];
        const ValueId b = node.args[1];
        switch (node.kind) {
          case NodeKind::kInput:
            values[i] = inputs[next_input++];
            break;
          case NodeKind::kAdd:
            values[i] = evaluator.add(values[a], values[b]);
            break;
          case NodeKind::kSub:
            values[i] = evaluator.sub(values[a], values[b]);
            break;
          case NodeKind::kNegate:
            values[i] = values[a];
            evaluator.negateInPlace(values[i]);
            break;
          case NodeKind::kAddPlain:
            values[i] = values[a];
            evaluator.addPlainInPlace(values[i],
                                      circuit.plains[node.plain]);
            break;
          case NodeKind::kMultPlain:
            values[i] = evaluator.multiplyPlain(
                values[a], circuit.plains[node.plain]);
            break;
          case NodeKind::kMult:
            values[i] =
                evaluator.multiplyNoRelin(values[a], values[b]);
            break;
          case NodeKind::kSquare:
            values[i] = evaluator.multiplyNoRelin(values[a], values[a]);
            break;
          case NodeKind::kRelin:
            fatalIf(rlk == nullptr,
                    "circuit relinearizes but no keys were given");
            values[i] = values[a];
            evaluator.relinearizeInPlace(values[i], *rlk);
            break;
          case NodeKind::kRotate:
          case NodeKind::kRotateColumns: {
            // Members of a hoist group (>= 2 rotations of one value)
            // use the hoisted key-switch numerics on every execution
            // path; lone rotations match plain applyGalois. Element 1
            // (steps congruent to zero) is an identity copy and must
            // not demand Galois keys.
            const uint32_t g =
                rotationElement(node, values[a][0].degree());
            if (g == 1) {
                values[i] = values[a];
                break;
            }
            values[i] = hoist_sizes[i] >= 2
                            ? evaluator.applyGaloisHoisted(values[a], g,
                                                           needGalois())
                            : evaluator.applyGalois(values[a], g,
                                                    needGalois());
            break;
          }
          case NodeKind::kRotateSum:
            values[i] = evaluator.sumAllSlots(values[a], needGalois());
            break;
          case NodeKind::kModSwitch:
            values[i] = evaluator.modSwitch(values[a]);
            break;
        }
    }

    std::vector<fv::Ciphertext> outputs;
    outputs.reserve(circuit.outputs.size());
    for (ValueId out : circuit.outputs)
        outputs.push_back(values[out]);
    return outputs;
}

} // namespace heat::compiler
