#include "compiler/noise_pass.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/panic.h"

namespace heat::compiler {

namespace {

/** Rotate-and-add noise recurrence (fv::Evaluator::sumAllSlots). */
double
rotateSumLogNoise(const fv::NoiseModel &model, double v, size_t degree,
                  size_t level)
{
    for (size_t step = 1; step <= degree / 4; step *= 2)
        v = model.addStep(v, model.keySwitchStep(v, level));
    return model.addStep(v, model.keySwitchStep(v, level));
}

} // namespace

NoiseEstimate
estimateCircuitNoise(std::shared_ptr<const fv::FvParams> params,
                     const Circuit &circuit, fv::NoiseBound bound)
{
    const size_t degree = params->degree();
    const fv::NoiseModel model(std::move(params), bound);

    // log2 |v| per value id; the budget annotation is derived from it.
    std::vector<double> log_v(circuit.nodes.size(), 0.0);
    NoiseEstimate est;
    est.bound = bound;
    est.levels = valueLevels(circuit);
    est.budget_bits.resize(circuit.nodes.size(), 0.0);

    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        const CircuitNode &node = circuit.nodes[i];
        const ValueId a = node.args[0];
        const ValueId b = node.args[1];
        const size_t level = est.levels[i];
        double v = 0.0;
        switch (node.kind) {
          case NodeKind::kInput:
            v = model.freshLogNoise();
            break;
          case NodeKind::kAdd:
          case NodeKind::kSub:
            v = model.addStep(log_v[a], log_v[b]);
            break;
          case NodeKind::kNegate:
            v = log_v[a];
            break;
          case NodeKind::kAddPlain:
            v = model.addPlainStep(log_v[a], level);
            break;
          case NodeKind::kMultPlain:
            v = model.multiplyPlainStep(log_v[a]);
            break;
          case NodeKind::kMult:
            v = model.multiplyStep(log_v[a], log_v[b], level);
            break;
          case NodeKind::kSquare:
            v = model.multiplyStep(log_v[a], log_v[a], level);
            break;
          case NodeKind::kRelin:
            v = model.keySwitchStep(log_v[a], level);
            break;
          case NodeKind::kRotate:
          case NodeKind::kRotateColumns:
            // Identity rotations (element 1) are noise-free copies;
            // everything else pays one Galois key-switch.
            v = rotationElement(node, degree) == 1
                    ? log_v[a]
                    : model.keySwitchStep(log_v[a], level);
            break;
          case NodeKind::kRotateSum:
            v = rotateSumLogNoise(model, log_v[a], degree, level);
            break;
          case NodeKind::kModSwitch:
            // The invariant noise carries over to the shrunken modulus
            // up to the divide-and-round term.
            v = model.modSwitchStep(log_v[a], est.levels[a]);
            break;
        }
        log_v[i] = v;
        est.budget_bits[i] = model.budgetBits(v);
        if (est.budget_bits[i] <= 0.0 && est.first_exhausted == kNoValue)
            est.first_exhausted = static_cast<ValueId>(i);
    }

    est.min_output_budget_bits =
        std::numeric_limits<double>::infinity();
    for (ValueId out : circuit.outputs)
        est.min_output_budget_bits =
            std::min(est.min_output_budget_bits, est.budget_bits[out]);
    return est;
}

std::string
noiseDiagnostic(std::shared_ptr<const fv::FvParams> params,
                const Circuit &circuit, const NoiseEstimate &estimate)
{
    if (estimate.ok())
        return {};
    const ValueId v = estimate.first_exhausted;
    const CircuitNode &node = circuit.nodes[v];
    const std::vector<int> depth = multiplicativeDepths(circuit);
    const size_t level =
        v < estimate.levels.size() ? estimate.levels[v] : 0;

    bool has_mod_switch = false;
    for (const CircuitNode &n : circuit.nodes)
        has_mod_switch |= n.kind == NodeKind::kModSwitch;

    const fv::NoiseModel model(params, estimate.bound);
    std::ostringstream os;
    os << "predicted noise budget exhausted at node " << v << " ("
       << nodeKindName(node.kind) << ", multiplicative depth "
       << depth[v] << ", ciphertext level " << level << " with log q_"
       << level << "=" << params->qBits(level)
       << "): 0 bits remain of the " << model.freshBudgetBits()
       << "-bit fresh budget (n=" << params->degree()
       << ", log q=" << params->qBits() << ", t=" << params->plainModulus()
       << "); the whole circuit has multiplicative depth "
       << *std::max_element(depth.begin(), depth.end())
       << " against a supported depth of " << model.supportedDepth();
    if (!has_mod_switch)
        os << " — reduce the depth (e.g. a Paterson-Stockmeyer plan), "
              "enlarge q, or let the compiler assign levels "
              "(CompilerOptions::auto_mod_switch)";
    else
        os << " — the level assignment could not save this circuit; "
              "reduce the depth or enlarge q";
    return os.str();
}

Circuit
insertModSwitches(const Circuit &circuit,
                  std::shared_ptr<const fv::FvParams> params,
                  fv::NoiseBound bound)
{
    circuit.validate();
    const size_t degree = params->degree();
    const size_t max_level = params->maxLevel();
    const fv::NoiseModel model(params, bound);

    // A drop must leave the rest of the value's multiply chain at
    // least this much predicted budget: headroom for the plain-operand
    // and rotation steps the chain simulation below ignores.
    constexpr double kMarginBits = 10.0;

    // Heaviest future multiply load per value: how many tensors
    // (kMult/kSquare) the worst consumer path still performs. Reverse
    // walk over the definition order.
    std::vector<int> future(circuit.nodes.size(), 0);
    for (size_t i = circuit.nodes.size(); i-- > 0;) {
        const CircuitNode &node = circuit.nodes[i];
        const bool tensor = node.kind == NodeKind::kMult ||
                            node.kind == NodeKind::kSquare;
        const int through = future[i] + (tensor ? 1 : 0);
        for (int a = 0; a < nodeArgCount(node.kind); ++a)
            future[node.args[a]] =
                std::max(future[node.args[a]], through);
    }

    // Predicted budget after running @p m relinearized squarings (the
    // worst-case remaining chain) entirely at @p level. Each greedy
    // drop re-validates this invariant one level deeper, so every
    // accepted drop is individually safe even though later drops make
    // the actual trajectory differ.
    const auto chainBudget = [&](double log_v, size_t level, int m) {
        for (int k = 0; k < m; ++k) {
            log_v = model.keySwitchStep(
                model.multiplyStep(log_v, log_v, level), level);
        }
        return model.budgetBits(log_v);
    };

    CircuitBuilder b;
    std::vector<ValueId> map(circuit.nodes.size(), kNoValue);
    std::vector<size_t> level(circuit.nodes.size(), 0);
    std::vector<double> log_v(circuit.nodes.size(), 0.0);

    // Align a mapped value up to @p target by inserting drops. Only
    // ever called on 2-element values (binary-join operands), so the
    // inserted kModSwitch nodes never touch an unrelinearized tensor.
    const auto raise = [&](ValueId x, size_t target) {
        while (level[x] < target) {
            log_v[x] = model.modSwitchStep(log_v[x], level[x]);
            map[x] = b.modSwitch(map[x]);
            ++level[x];
        }
    };

    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        const CircuitNode &node = circuit.nodes[i];
        const ValueId a = node.args[0];
        const ValueId b2 = node.args[1];
        switch (node.kind) {
          case NodeKind::kInput:
            map[i] = b.input();
            level[i] = 0;
            log_v[i] = model.freshLogNoise();
            break;
          case NodeKind::kAdd:
          case NodeKind::kSub: {
            const size_t join = std::max(level[a], level[b2]);
            raise(a, join);
            raise(b2, join);
            map[i] = node.kind == NodeKind::kAdd
                         ? b.add(map[a], map[b2])
                         : b.sub(map[a], map[b2]);
            level[i] = join;
            log_v[i] = model.addStep(log_v[a], log_v[b2]);
            break;
          }
          case NodeKind::kNegate:
            map[i] = b.negate(map[a]);
            level[i] = level[a];
            log_v[i] = log_v[a];
            break;
          case NodeKind::kAddPlain:
            map[i] = b.addPlain(map[a], circuit.plains[node.plain]);
            level[i] = level[a];
            log_v[i] = model.addPlainStep(log_v[a], level[a]);
            break;
          case NodeKind::kMultPlain:
            map[i] = b.multPlain(map[a], circuit.plains[node.plain]);
            level[i] = level[a];
            log_v[i] = model.multiplyPlainStep(log_v[a]);
            break;
          case NodeKind::kMult: {
            const size_t join = std::max(level[a], level[b2]);
            raise(a, join);
            raise(b2, join);
            map[i] = b.multNoRelin(map[a], map[b2]);
            level[i] = join;
            log_v[i] = model.multiplyStep(log_v[a], log_v[b2], join);
            break;
          }
          case NodeKind::kSquare:
            map[i] = b.squareNoRelin(map[a]);
            level[i] = level[a];
            log_v[i] =
                model.multiplyStep(log_v[a], log_v[a], level[a]);
            break;
          case NodeKind::kRelin: {
            map[i] = b.relinearize(map[a]);
            level[i] = level[a];
            log_v[i] = model.keySwitchStep(log_v[a], level[a]);
            // The canonical drop point: the 3-element value is gone
            // and the key switch was paid at the wider modulus. Drop
            // as deep as the rest of this value's multiply chain
            // allows with margin.
            while (level[i] < max_level) {
                const double dropped =
                    model.modSwitchStep(log_v[i], level[i]);
                if (chainBudget(dropped, level[i] + 1, future[i]) <
                    kMarginBits)
                    break;
                map[i] = b.modSwitch(map[i]);
                log_v[i] = dropped;
                ++level[i];
            }
            break;
          }
          case NodeKind::kRotate:
          case NodeKind::kRotateColumns: {
            map[i] = node.kind == NodeKind::kRotate
                         ? b.rotate(map[a], node.steps)
                         : b.rotateColumns(map[a]);
            level[i] = level[a];
            log_v[i] =
                rotationElement(node, degree) == 1
                    ? log_v[a]
                    : model.keySwitchStep(log_v[a], level[a]);
            break;
          }
          case NodeKind::kRotateSum:
            map[i] = b.rotateSum(map[a]);
            level[i] = level[a];
            log_v[i] =
                rotateSumLogNoise(model, log_v[a], degree, level[a]);
            break;
          case NodeKind::kModSwitch:
            // Hand-written drops are kept verbatim.
            fatalIf(level[a] >= max_level,
                    "node ", i, " mod-switches past the last level (",
                    max_level, ")");
            map[i] = b.modSwitch(map[a]);
            level[i] = level[a] + 1;
            log_v[i] = model.modSwitchStep(log_v[a], level[a]);
            break;
        }
    }

    for (ValueId out : circuit.outputs)
        b.output(map[out]);
    return b.build();
}

} // namespace heat::compiler
