#include "compiler/noise_pass.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

namespace heat::compiler {

NoiseEstimate
estimateCircuitNoise(std::shared_ptr<const fv::FvParams> params,
                     const Circuit &circuit)
{
    const size_t degree = params->degree();
    const fv::NoiseModel model(std::move(params));

    // log2 |v| per value id; the budget annotation is derived from it.
    std::vector<double> log_v(circuit.nodes.size(), 0.0);
    NoiseEstimate est;
    est.budget_bits.resize(circuit.nodes.size(), 0.0);

    for (size_t i = 0; i < circuit.nodes.size(); ++i) {
        const CircuitNode &node = circuit.nodes[i];
        const ValueId a = node.args[0];
        const ValueId b = node.args[1];
        double v = 0.0;
        switch (node.kind) {
          case NodeKind::kInput:
            v = model.freshLogNoise();
            break;
          case NodeKind::kAdd:
          case NodeKind::kSub:
            v = model.addStep(log_v[a], log_v[b]);
            break;
          case NodeKind::kNegate:
            v = log_v[a];
            break;
          case NodeKind::kAddPlain:
            v = model.addPlainStep(log_v[a]);
            break;
          case NodeKind::kMultPlain:
            v = model.multiplyPlainStep(log_v[a]);
            break;
          case NodeKind::kMult:
            v = model.multiplyStep(log_v[a], log_v[b]);
            break;
          case NodeKind::kSquare:
            v = model.multiplyStep(log_v[a], log_v[a]);
            break;
          case NodeKind::kRelin:
            v = model.keySwitchStep(log_v[a]);
            break;
          case NodeKind::kRotate:
          case NodeKind::kRotateColumns:
            // Identity rotations (element 1) are noise-free copies;
            // everything else pays one Galois key-switch.
            v = rotationElement(node, degree) == 1
                    ? log_v[a]
                    : model.keySwitchStep(log_v[a]);
            break;
          case NodeKind::kRotateSum: {
            // Rotate-and-add: log-many row rotations plus the column
            // swap, each a key-switch followed by an addition with the
            // running accumulator (fv::Evaluator::sumAllSlots).
            v = log_v[a];
            for (size_t step = 1; step <= degree / 4; step *= 2)
                v = model.addStep(v, model.keySwitchStep(v));
            v = model.addStep(v, model.keySwitchStep(v));
            break;
          }
        }
        log_v[i] = v;
        est.budget_bits[i] = model.budgetBits(v);
        if (est.budget_bits[i] <= 0.0 && est.first_exhausted == kNoValue)
            est.first_exhausted = static_cast<ValueId>(i);
    }

    est.min_output_budget_bits =
        std::numeric_limits<double>::infinity();
    for (ValueId out : circuit.outputs)
        est.min_output_budget_bits =
            std::min(est.min_output_budget_bits, est.budget_bits[out]);
    return est;
}

std::string
noiseDiagnostic(std::shared_ptr<const fv::FvParams> params,
                const Circuit &circuit, const NoiseEstimate &estimate)
{
    if (estimate.ok())
        return {};
    const ValueId v = estimate.first_exhausted;
    const CircuitNode &node = circuit.nodes[v];
    const std::vector<int> depth = multiplicativeDepths(circuit);

    const fv::NoiseModel model(params);
    std::ostringstream os;
    os << "predicted noise budget exhausted at node " << v << " ("
       << nodeKindName(node.kind) << ", multiplicative depth "
       << depth[v] << "): 0 bits remain of the " << model.freshBudgetBits()
       << "-bit fresh budget (n=" << params->degree()
       << ", log q=" << params->qBits() << ", t=" << params->plainModulus()
       << "); the whole circuit has multiplicative depth "
       << *std::max_element(depth.begin(), depth.end())
       << " against a supported depth of " << model.supportedDepth()
       << " — reduce the depth (e.g. a Paterson-Stockmeyer plan) or "
          "enlarge q";
    return os.str();
}

} // namespace heat::compiler
