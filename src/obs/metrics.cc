#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace heat::obs {
namespace {

/** Render a double the way Prometheus expects: integral values without
 *  a trailing ".000000", everything else in shortest round-trip form. */
std::string
renderValue(double v)
{
    if (std::isnan(v)) {
        return "NaN";
    }
    if (std::isinf(v)) {
        return v > 0 ? "+Inf" : "-Inf";
    }
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::ostringstream os;
        os << static_cast<long long>(v);
        return os.str();
    }
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

/** Family name = metric id up to the first '{' (label block). */
std::string
familyOf(const std::string &name)
{
    const size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

/** Splice an extra label (`le="..."`) into a metric id that may or may
 *  not already carry a label block, and append a @p suffix to the
 *  family name: `f{a="b"}` + "_bucket" -> `f_bucket{a="b",le="..."}`. */
std::string
spliceHistogramSeries(const std::string &name, const std::string &suffix,
                      const std::string &le)
{
    const size_t brace = name.find('{');
    std::string out;
    if (brace == std::string::npos) {
        out = name + suffix;
        if (!le.empty()) {
            out += "{le=\"" + le + "\"}";
        }
        return out;
    }
    out = name.substr(0, brace) + suffix;
    if (le.empty()) {
        out += name.substr(brace);
        return out;
    }
    // Drop the closing '}' and append the le label.
    out += name.substr(brace, name.size() - brace - 1);
    out += ",le=\"" + le + "\"}";
    return out;
}

/** Append @p suffix to the family portion of a metric id, preserving
 *  any label block: `f{a="b"}` + "_count" -> `f_count{a="b"}`. */
std::string
withSuffix(const std::string &name, const std::string &suffix)
{
    return spliceHistogramSeries(name, suffix, "");
}

void
atomicMaxDouble(std::atomic<double> &slot, double v)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (v > cur &&
           !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

void
atomicAddDouble(std::atomic<double> &slot, double v)
{
    double cur = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1])
{
    for (size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

std::vector<double>
Histogram::exponentialBounds(double start, double factor, size_t count)
{
    std::vector<double> bounds;
    bounds.reserve(count);
    double b = start;
    for (size_t i = 0; i < count; ++i) {
        bounds.push_back(b);
        b *= factor;
    }
    return bounds;
}

void
Histogram::observe(double v)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const size_t idx = static_cast<size_t>(it - bounds_.begin());
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sum_, v);
    atomicMaxDouble(max_, v);
}

double
Histogram::quantile(double q) const
{
    const uint64_t n = count();
    if (n == 0) {
        return 0.0;
    }
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
    uint64_t seen = 0;
    for (size_t i = 0; i <= bounds_.size(); ++i) {
        const uint64_t in_bucket = bucketCount(i);
        if (seen + in_bucket < rank) {
            seen += in_bucket;
            continue;
        }
        if (i == bounds_.size()) {
            // Open overflow bucket: the observed max is the only honest
            // upper estimate we have.
            return max();
        }
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        const double hi = bounds_[i];
        const double frac = in_bucket == 0
                                ? 1.0
                                : static_cast<double>(rank - seen) /
                                      static_cast<double>(in_bucket);
        // Never report past the largest observation: a sparsely filled
        // bucket would otherwise inflate the tail estimate.
        return std::min(lo + frac * (hi - lo), max());
    }
    return max();
}

Registry::Entry *
Registry::find(const std::string &name, Entry::Kind kind)
{
    for (auto &e : entries_) {
        if (e->name == name && e->kind == kind) {
            return e.get();
        }
    }
    return nullptr;
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry *e = find(name, Entry::Kind::kCounter)) {
        return *e->counter;
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->help = help;
    entry->kind = Entry::Kind::kCounter;
    entry->counter = std::make_unique<Counter>();
    Counter &out = *entry->counter;
    entries_.push_back(std::move(entry));
    return out;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry *e = find(name, Entry::Kind::kGauge)) {
        return *e->gauge;
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->help = help;
    entry->kind = Entry::Kind::kGauge;
    entry->gauge = std::make_unique<Gauge>();
    Gauge &out = *entry->gauge;
    entries_.push_back(std::move(entry));
    return out;
}

Histogram &
Registry::histogram(const std::string &name, std::vector<double> bounds,
                    const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (Entry *e = find(name, Entry::Kind::kHistogram)) {
        return *e->histogram;
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->help = help;
    entry->kind = Entry::Kind::kHistogram;
    entry->histogram = std::make_unique<Histogram>(std::move(bounds));
    Histogram &out = *entry->histogram;
    entries_.push_back(std::move(entry));
    return out;
}

std::string
Registry::renderText() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    std::string last_family;
    for (const auto &e : entries_) {
        const std::string family = familyOf(e->name);
        if (family != last_family) {
            if (!e->help.empty()) {
                os << "# HELP " << family << ' ' << e->help << '\n';
            }
            const char *type = e->kind == Entry::Kind::kCounter ? "counter"
                               : e->kind == Entry::Kind::kGauge
                                   ? "gauge"
                                   : "histogram";
            os << "# TYPE " << family << ' ' << type << '\n';
            last_family = family;
        }
        switch (e->kind) {
        case Entry::Kind::kCounter:
            os << e->name << ' ' << e->counter->value() << '\n';
            break;
        case Entry::Kind::kGauge:
            os << e->name << ' ' << renderValue(e->gauge->value()) << '\n';
            break;
        case Entry::Kind::kHistogram: {
            const Histogram &h = *e->histogram;
            uint64_t cumulative = 0;
            for (size_t i = 0; i < h.bounds().size(); ++i) {
                cumulative += h.bucketCount(i);
                os << spliceHistogramSeries(e->name, "_bucket",
                                            renderValue(h.bounds()[i]))
                   << ' ' << cumulative << '\n';
            }
            cumulative += h.bucketCount(h.bounds().size());
            os << spliceHistogramSeries(e->name, "_bucket", "+Inf") << ' '
               << cumulative << '\n';
            os << withSuffix(e->name, "_sum") << ' ' << renderValue(h.sum())
               << '\n';
            os << withSuffix(e->name, "_count") << ' ' << h.count() << '\n';
            break;
        }
        }
    }
    return os.str();
}

std::vector<MetricSample>
Registry::samples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MetricSample> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        switch (e->kind) {
        case Entry::Kind::kCounter:
            out.push_back({e->name, "counter",
                           static_cast<double>(e->counter->value())});
            break;
        case Entry::Kind::kGauge:
            out.push_back({e->name, "gauge", e->gauge->value()});
            break;
        case Entry::Kind::kHistogram: {
            const Histogram &h = *e->histogram;
            out.push_back({withSuffix(e->name, "_count"), "histogram",
                           static_cast<double>(h.count())});
            out.push_back({withSuffix(e->name, "_sum"), "histogram",
                           h.sum()});
            out.push_back(
                {withSuffix(e->name, "_mean"), "histogram", h.mean()});
            out.push_back({withSuffix(e->name, "_p50"), "histogram",
                           h.quantile(0.50)});
            out.push_back({withSuffix(e->name, "_p99"), "histogram",
                           h.quantile(0.99)});
            out.push_back(
                {withSuffix(e->name, "_max"), "histogram", h.max()});
            break;
        }
        }
    }
    return out;
}

} // namespace heat::obs
