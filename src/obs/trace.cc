#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

namespace heat::obs {
namespace {

std::atomic<Tracer *> g_tracer{nullptr};

thread_local double tl_modeled_now_us = 0.0;
thread_local uint32_t tl_track = 0;

/** Small stable per-thread track id for wall spans. */
uint32_t
wallTrack()
{
    thread_local const uint32_t track = [] {
        static std::atomic<uint32_t> next{0};
        return next.fetch_add(1, std::memory_order_relaxed);
    }();
    return track;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
looksNumeric(const std::string &s)
{
    if (s.empty()) {
        return false;
    }
    char *end = nullptr;
    std::strtod(s.c_str(), &end);
    return end != nullptr && *end == '\0';
}

void
writeArgs(std::ostream &os,
          const std::vector<std::pair<std::string, std::string>> &args)
{
    os << '{';
    for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
            os << ',';
        }
        os << '"' << jsonEscape(args[i].first) << "\":";
        if (looksNumeric(args[i].second)) {
            os << args[i].second;
        } else {
            os << '"' << jsonEscape(args[i].second) << '"';
        }
    }
    os << '}';
}

void
writeEvent(std::ostream &os, char phase, const SpanRecord &s, double ts_us,
           bool &first)
{
    if (!first) {
        os << ",\n";
    }
    first = false;
    std::ostringstream ts;
    ts.precision(17);
    ts << ts_us;
    os << R"(  {"name":")" << jsonEscape(s.name) << R"(","cat":")"
       << jsonEscape(s.category.empty() ? std::string("heat") : s.category)
       << R"(","ph":")" << phase << R"(","pid":)" << s.pid << R"(,"tid":)"
       << s.track << R"(,"ts":)" << ts.str();
    if (phase == 'B' && !s.args.empty()) {
        os << R"(,"args":)";
        writeArgs(os, s.args);
    }
    os << '}';
}

void
writeMetadata(std::ostream &os, uint32_t pid, uint32_t tid,
              const std::string &kind, const std::string &label, bool &first)
{
    if (!first) {
        os << ",\n";
    }
    first = false;
    os << R"(  {"name":")" << kind << R"(","ph":"M","pid":)" << pid
       << R"(,"tid":)" << tid << R"(,"args":{"name":")" << jsonEscape(label)
       << R"("}})";
}

/** Installs a tracer from HEAT_TRACE at static-init time and flushes
 *  it to the named file at process exit. */
struct EnvTracer
{
    EnvTracer()
    {
        const char *path = std::getenv("HEAT_TRACE");
        if (path == nullptr || *path == '\0') {
            return;
        }
        file = path;
        tracer = std::make_unique<Tracer>();
        setActiveTracer(tracer.get());
    }

    ~EnvTracer()
    {
        if (tracer == nullptr) {
            return;
        }
        setActiveTracer(nullptr);
        std::ofstream os(file);
        if (os) {
            tracer->writeChromeTrace(os);
        }
    }

    std::string file;
    std::unique_ptr<Tracer> tracer;
};

EnvTracer g_env_tracer;

} // namespace

Tracer::Tracer(size_t max_spans) : max_spans_(max_spans)
{
}

void
Tracer::addSpan(SpanRecord span)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= max_spans_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    spans_.push_back(std::move(span));
}

std::vector<SpanRecord>
Tracer::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

void
Tracer::writeChromeTrace(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &other_data) const
{
    std::vector<SpanRecord> spans = this->spans();

    // Group spans by (pid, track); within a track, sorting by start
    // ascending then duration descending yields parents before their
    // children, so a simple stack emits balanced B/E pairs.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const SpanRecord &a, const SpanRecord &b) {
                         if (a.pid != b.pid) {
                             return a.pid < b.pid;
                         }
                         if (a.track != b.track) {
                             return a.track < b.track;
                         }
                         if (a.start_us != b.start_us) {
                             return a.start_us < b.start_us;
                         }
                         return a.dur_us > b.dur_us;
                     });

    os << "{\n\"traceEvents\": [\n";
    bool first = true;

    bool saw_modeled = false;
    bool saw_wall = false;
    std::vector<std::pair<uint32_t, uint32_t>> tracks;
    for (const SpanRecord &s : spans) {
        saw_modeled = saw_modeled || s.pid == kModeledPid;
        saw_wall = saw_wall || s.pid == kWallPid;
        const auto key = std::make_pair(s.pid, s.track);
        if (std::find(tracks.begin(), tracks.end(), key) == tracks.end()) {
            tracks.push_back(key);
        }
    }
    if (saw_modeled) {
        writeMetadata(os, kModeledPid, 0, "process_name",
                      "heat modeled time", first);
    }
    if (saw_wall) {
        writeMetadata(os, kWallPid, 0, "process_name", "heat host wall time",
                      first);
    }
    for (const auto &[pid, track] : tracks) {
        std::ostringstream label;
        label << (pid == kModeledPid ? "worker " : "thread ") << track;
        writeMetadata(os, pid, track, "thread_name", label.str(), first);
    }

    // Emit per track with an explicit open-span stack: close every
    // span that ends at or before the next span's start, then open the
    // next. Sibling spans sharing an endpoint close in LIFO order.
    struct Open
    {
        const SpanRecord *span;
        double end_us;
    };
    std::vector<Open> stack;
    auto flushUntil = [&](double ts) {
        while (!stack.empty() && stack.back().end_us <= ts) {
            writeEvent(os, 'E', *stack.back().span, stack.back().end_us,
                       first);
            stack.pop_back();
        }
    };

    const SpanRecord *prev = nullptr;
    for (const SpanRecord &s : spans) {
        if (prev != nullptr &&
            (prev->pid != s.pid || prev->track != s.track)) {
            // Track switch: close everything still open.
            while (!stack.empty()) {
                writeEvent(os, 'E', *stack.back().span, stack.back().end_us,
                           first);
                stack.pop_back();
            }
        }
        flushUntil(s.start_us);
        writeEvent(os, 'B', s, s.start_us, first);
        stack.push_back({&s, s.start_us + s.dur_us});
        prev = &s;
    }
    while (!stack.empty()) {
        writeEvent(os, 'E', *stack.back().span, stack.back().end_us, first);
        stack.pop_back();
    }

    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": ";
    std::vector<std::pair<std::string, std::string>> extra = other_data;
    extra.emplace_back("dropped_spans", std::to_string(droppedSpans()));
    writeArgs(os, extra);
    os << "\n}\n";
}

Tracer *
activeTracer()
{
    return g_tracer.load(std::memory_order_relaxed);
}

Tracer *
setActiveTracer(Tracer *tracer)
{
    return g_tracer.exchange(tracer, std::memory_order_acq_rel);
}

double
modeledNowUs()
{
    return tl_modeled_now_us;
}

void
setModeledNowUs(double us)
{
    tl_modeled_now_us = us;
}

void
advanceModeledUs(double us)
{
    tl_modeled_now_us += us;
}

uint32_t
traceTrack()
{
    return tl_track;
}

void
setTraceTrack(uint32_t track)
{
    tl_track = track;
}

void
recordModeledSpan(std::string name, std::string category, double start_us,
                  double dur_us,
                  std::vector<std::pair<std::string, std::string>> args)
{
    Tracer *tracer = activeTracer();
    if (tracer == nullptr) {
        return;
    }
    SpanRecord span;
    span.name = std::move(name);
    span.category = std::move(category);
    span.pid = kModeledPid;
    span.track = traceTrack();
    span.start_us = start_us;
    span.dur_us = dur_us;
    span.args = std::move(args);
    tracer->addSpan(std::move(span));
}

void
ScopedSpan::finish()
{
    SpanRecord span;
    span.name = name_;
    span.category = category_;
    span.pid = kWallPid;
    span.track = wallTrack();
    span.start_us = start_us_;
    span.dur_us = wallNowUs() - start_us_;
    tracer_->addSpan(std::move(span));
}

} // namespace heat::obs
