/**
 * @file
 * Structured tracing — nested spans exportable as Chrome `trace_event`
 * JSON (chrome://tracing, Perfetto).
 *
 * Two time domains coexist in one trace, as separate "processes":
 *
 *  - pid 1, **modeled time**: spans whose timestamps come from the
 *    coprocessor cycle model (`modeledNowUs()` thread-local clock).
 *    These are deterministic — the same circuit produces byte-identical
 *    span trees at any worker count — and are the trace the paper-style
 *    per-unit breakdowns hang off.
 *  - pid 2, **host wall time**: cheap RAII spans from the `OBS_SPAN`
 *    macro around software kernels (NTT, RNS conversions, evaluator
 *    ops). Useful for profiling the simulator itself.
 *
 * The tracer is off by default. `OBS_SPAN`'s disabled cost is one
 *  relaxed atomic load and a predictable branch (CI gates it at < 2%
 * on the forward-NTT hot loop). Set `HEAT_TRACE=<file>` to install a
 * process-global tracer flushed at exit, or install one explicitly
 * with `setActiveTracer()`.
 */

#ifndef HEAT_OBS_TRACE_H
#define HEAT_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace heat::obs {

/** Trace "process" ids (Chrome trace groups tracks by pid). */
inline constexpr uint32_t kModeledPid = 1;
inline constexpr uint32_t kWallPid = 2;

/** One completed span. Chrome `B`/`E` events are generated at export
 *  time from (start_us, dur_us); storing completed spans keeps
 *  recording a single append. */
struct SpanRecord
{
    std::string name;
    std::string category;
    /** kModeledPid or kWallPid. */
    uint32_t pid = kWallPid;
    /** Track within the process: worker index for modeled spans,
     *  hashed thread id for wall spans. */
    uint32_t track = 0;
    double start_us = 0.0;
    double dur_us = 0.0;
    /** Optional key/value annotations, exported under "args". Values
     *  are emitted verbatim when numeric-looking, quoted otherwise. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Span sink. Recording appends under a mutex; spans are capped (the
 * full test suite under HEAT_TRACE would otherwise record millions of
 * NTT spans) with a dropped-span counter so truncation is visible.
 */
class Tracer
{
  public:
    explicit Tracer(size_t max_spans = kDefaultMaxSpans);

    void addSpan(SpanRecord span);

    /** Copy out all recorded spans (for tests). */
    std::vector<SpanRecord> spans() const;

    uint64_t
    droppedSpans() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /**
     * Chrome trace_event "JSON Object Format": `traceEvents` with
     * balanced B/E duration events per (pid, track), `M` metadata
     * events naming processes/threads, and an `otherData` object
     * carrying @p other_data entries (the CLI stores per-unit cycle
     * attribution there for the CI checker).
     */
    void writeChromeTrace(
        std::ostream &os,
        const std::vector<std::pair<std::string, std::string>> &other_data =
            {}) const;

    static constexpr size_t kDefaultMaxSpans = 1u << 18;

  private:
    mutable std::mutex mu_;
    std::vector<SpanRecord> spans_;
    size_t max_spans_;
    std::atomic<uint64_t> dropped_{0};
};

/** @return the process-global tracer, or nullptr when tracing is off.
 *  One relaxed load — this is the disabled-instrumentation hot path. */
Tracer *activeTracer();

/** Install (or clear, with nullptr) the process-global tracer. Not
 *  synchronized with in-flight span recording; install before
 *  spawning workers. @return the previous tracer. */
Tracer *setActiveTracer(Tracer *tracer);

/** Thread-local modeled clock (µs). The serving layer sets the base
 *  at job start; the compiler's run loop advances it as it charges
 *  modeled cost, emitting spans at the time the cost lands. */
double modeledNowUs();
void setModeledNowUs(double us);
void advanceModeledUs(double us);

/** Thread-local track id for modeled spans (worker index). */
uint32_t traceTrack();
void setTraceTrack(uint32_t track);

/** Record a completed modeled-time span on this thread's track. */
void recordModeledSpan(
    std::string name, std::string category, double start_us, double dur_us,
    std::vector<std::pair<std::string, std::string>> args = {});

/** Monotonic host wall clock in µs (for wall spans). */
inline double
wallNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** RAII wall-time span used by OBS_SPAN. The name must outlive the
 *  span (string literals only). */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *category)
        : tracer_(activeTracer()), name_(name), category_(category),
          start_us_(tracer_ != nullptr ? wallNowUs() : 0.0)
    {
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    ~ScopedSpan()
    {
        if (tracer_ == nullptr) {
            return;
        }
        finish();
    }

  private:
    void finish();

    Tracer *tracer_;
    const char *name_;
    const char *category_;
    double start_us_;
};

} // namespace heat::obs

/**
 * Wall-time instrumentation point. Disabled (no tracer installed) cost
 * is one relaxed atomic load + branch; pass string literals only.
 */
#define HEAT_OBS_CONCAT_IMPL(a, b) a##b
#define HEAT_OBS_CONCAT(a, b) HEAT_OBS_CONCAT_IMPL(a, b)
#define OBS_SPAN(name, category)                                            \
    ::heat::obs::ScopedSpan HEAT_OBS_CONCAT(obs_span_, __LINE__)((name),    \
                                                                 (category))

#endif // HEAT_OBS_TRACE_H
