/**
 * @file
 * Metrics registry — counters, gauges and fixed-bucket histograms with
 * Prometheus-style text exposition and a flat snapshot the bench JSON
 * reporter consumes.
 *
 * Dependency-free (std only) so every layer of the stack can publish
 * into a registry without inverting the module order: obs sits below
 * hw/compiler/service.
 *
 * Naming follows the Prometheus exposition format: a metric id is
 * `family{label="value",...}` or a bare family name. renderText()
 * groups ids by family and emits one `# TYPE` line per family, so
 * per-tenant series (`heat_service_arrivals_total{tenant="alice"}`)
 * render as one family.
 *
 * Thread safety: metric handles returned by the registry are stable
 * for its lifetime and individually thread-safe (relaxed atomics — a
 * metric is a statistic, not a synchronization point). Registration
 * and snapshotting take the registry mutex.
 */

#ifndef HEAT_OBS_METRICS_H
#define HEAT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace heat::obs {

/** Monotonically increasing counter. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram: cumulative-style bucket counts over a set of
 * upper bounds fixed at construction (plus an implicit +inf bucket),
 * with sum/count/max for mean and tail reporting. quantile() estimates
 * percentiles by linear interpolation inside the selected bucket — the
 * sliding p50/p99 the serving layer reports without retaining (and
 * sorting) every latency sample.
 */
class Histogram
{
  public:
    /** @param bounds strictly increasing bucket upper bounds. */
    explicit Histogram(std::vector<double> bounds);

    /** Exponential bucket bounds: start, start*factor, ... (count). */
    static std::vector<double> exponentialBounds(double start,
                                                 double factor,
                                                 size_t count);

    /** Record one observation. */
    void observe(double v);

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Largest value observed (0 when empty). */
    double
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    double
    mean() const
    {
        const uint64_t n = count();
        return n > 0 ? sum() / static_cast<double>(n) : 0.0;
    }

    /**
     * Estimate the @p q quantile (0 < q <= 1) from the bucket counts:
     * find the bucket holding the ceil(q*count)-th observation and
     * interpolate linearly inside it. Observations past the last bound
     * report the observed max (the honest answer for an open bucket).
     */
    double quantile(double q) const;

    /** @return the configured bucket upper bounds. */
    const std::vector<double> &
    bounds() const
    {
        return bounds_;
    }

    /** @return count of observations <= bounds()[i] (non-cumulative
     *  per-bucket count; index bounds().size() is the overflow
     *  bucket). */
    uint64_t
    bucketCount(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

  private:
    std::vector<double> bounds_;
    /** bounds_.size() + 1 buckets; last = overflow. */
    std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> max_{0.0};
};

/** One flattened registry sample (see Registry::samples()). */
struct MetricSample
{
    std::string name; ///< metric id, histogram ids suffixed _count etc.
    std::string kind; ///< "counter", "gauge", "histogram"
    double value = 0.0;
};

/** Named-metric registry. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find-or-create; the returned reference is stable for the
     *  registry's lifetime. @p help is kept from the first call. */
    Counter &counter(const std::string &name,
                     const std::string &help = "");
    Gauge &gauge(const std::string &name, const std::string &help = "");

    /** Find-or-create a histogram; @p bounds is only used on
     *  creation (looking up an existing histogram with different
     *  bounds returns the existing one). */
    Histogram &histogram(const std::string &name,
                         std::vector<double> bounds,
                         const std::string &help = "");

    /**
     * Prometheus text exposition: `# HELP`/`# TYPE` per family, one
     * sample line per metric id, histograms as the conventional
     * cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
     */
    std::string renderText() const;

    /** Flat snapshot: one sample per counter/gauge; histograms expand
     *  to _count/_sum/_mean/_p50/_p99/_max. Registration order. */
    std::vector<MetricSample> samples() const;

  private:
    struct Entry
    {
        std::string name;
        std::string help;
        enum class Kind : uint8_t
        {
            kCounter,
            kGauge,
            kHistogram
        } kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry *find(const std::string &name, Entry::Kind kind);

    mutable std::mutex mu_;
    /** Registration order preserved for stable rendering. */
    std::vector<std::unique_ptr<Entry>> entries_;
};

} // namespace heat::obs

#endif // HEAT_OBS_METRICS_H
