/**
 * @file
 * Internal seams of the SIMD dispatch layer: the scalar kernel bodies
 * (shared by the scalar table and as in-kernel fallbacks / loop tails
 * of the vector translation units) and the constructors of the
 * per-ISA tables. Not installed; include simd/simd.h instead.
 */

#ifndef HEAT_SIMD_SIMD_INTERNAL_H
#define HEAT_SIMD_SIMD_INTERNAL_H

#include "simd/simd.h"

namespace heat::simd::detail {

// Scalar kernel bodies (the oracle semantics). The vector tables call
// these for ineligible moduli and for sub-lane-width loop tails, so a
// vector kernel's output is the scalar output by construction wherever
// it does not vectorize.
void addModScalar(uint64_t *a, const uint64_t *b, size_t n, uint64_t q);
void subModScalar(uint64_t *a, const uint64_t *b, size_t n, uint64_t q);
void negateModScalar(uint64_t *a, size_t n, uint64_t q);
void mulShoupScalar(uint64_t *a, size_t n, const rns::Modulus &q,
                    uint64_t w, uint64_t w_shoup);
void mulShoupOutScalar(uint64_t *dst, const uint64_t *src, size_t n,
                       const rns::Modulus &q, uint64_t w, uint64_t w_shoup);
void mulModScalar(uint64_t *a, const uint64_t *b, size_t n,
                  const rns::Modulus &q);
void macModScalar(uint64_t *acc, const uint64_t *a, const uint64_t *b,
                  size_t n, const rns::Modulus &q);
void reduceU32Scalar(uint64_t *dst, const uint64_t *src, size_t n,
                     const rns::Modulus &q);
void sop128Scalar(const uint64_t *const *rows, const uint64_t *weights,
                  size_t terms, size_t count, uint64_t *lo, uint64_t *hi);
void add128_64Scalar(uint64_t *lo, uint64_t *hi, const uint64_t *add,
                     size_t count);
void roundShift128Scalar(const uint64_t *lo, const uint64_t *hi,
                         size_t count, int shift, uint64_t *out);
void reduce128ModScalar(const uint64_t *lo, const uint64_t *hi,
                        uint64_t *out, size_t count, const rns::Modulus &q);

/**
 * Per-modulus constants for the 32-bit Shoup reduction chains shared
 * by the vector mul_mod / reduce_u32 / reduce128_mod kernels. Cheap to
 * build (two divisions), computed once per kernel call and amortized
 * over the n-element loop. Only meaningful for q < kLaneModulusBound.
 */
struct Mod32Constants
{
    uint64_t q = 0;
    uint64_t phi1 = 0;      ///< floor(2^32 / q): Shoup constant for w = 1
    uint64_t c32 = 0;       ///< 2^32 mod q
    uint64_t phi_c32 = 0;   ///< floor(c32 * 2^32 / q)
    uint64_t c64 = 0;       ///< 2^64 mod q
    uint64_t phi_c64 = 0;   ///< floor(c64 * 2^32 / q)
};

Mod32Constants mod32Constants(const rns::Modulus &q);

// Table constructors, one per compiled-in ISA tier.
const Kernels &scalarKernels();
#if defined(HEAT_HAVE_AVX2)
const Kernels &avx2Kernels();
#endif
#if defined(HEAT_HAVE_AVX512)
const Kernels &avx512Kernels();
#endif

} // namespace heat::simd::detail

#endif // HEAT_SIMD_SIMD_INTERNAL_H
