/**
 * @file
 * Runtime-dispatched SIMD kernel layer for the software backbone.
 *
 * Every randomized differential test, per-worker simulator replay and
 * bench in this repo bottoms out in NTT butterflies and residue loops;
 * this module gives them vectorized bodies without giving up the
 * bit-exact scalar oracle. Three kernel tables — scalar, AVX2,
 * AVX-512 — implement the same contracts; the active table is chosen
 * once from CPUID (overridable with `HEAT_SIMD=scalar|avx2|avx512`,
 * clamped to what the CPU and build support) and every entry produces
 * canonical outputs bit-identical to the scalar implementation.
 *
 * Vector paths use 32-bit Shoup/Harvey lazy reduction (one vpmuludq
 * per 64-bit product half), which bounds lane values by 2^32: only
 * moduli below kLaneModulusBound (2^30, the paper's RNS prime width)
 * vectorize. Every kernel checks its modulus and falls back to the
 * scalar body for wider primes, so callers never need to branch.
 *
 * The AVX2/AVX-512 translation units are compiled with per-file
 * `-mavx2`/`-mavx512f`; nothing else in the library is built with
 * extended ISAs, so the dispatcher — not the compiler — decides what
 * runs on a given host.
 */

#ifndef HEAT_SIMD_SIMD_H
#define HEAT_SIMD_SIMD_H

#include <cstddef>
#include <cstdint>

namespace heat::ntt {
class NttTables;
}
namespace heat::rns {
class Modulus;
}

namespace heat::simd {

/** Instruction-set tier of a kernel table. */
enum class Level
{
    kScalar = 0, ///< portable 64-bit code — the differential oracle
    kAvx2 = 1,   ///< 4 lanes of 64-bit per op
    kAvx512 = 2, ///< 8 lanes of 64-bit per op
};

/** @return "scalar", "avx2" or "avx512". */
const char *levelName(Level level);

/**
 * Largest level both compiled into this binary and supported by the
 * CPU (cached after the first call).
 */
Level detectedLevel();

/**
 * Level of the active kernel table. Starts at detectedLevel() lowered
 * by the HEAT_SIMD environment override, if any.
 */
Level activeLevel();

/**
 * Point the dispatcher at @p level's table (clamped to
 * detectedLevel()). Intended for tests and benchmarks; the process
 * default comes from CPUID + HEAT_SIMD.
 */
void setLevel(Level level);

/**
 * Moduli must be below this bound (2^30) for the vectorized paths:
 * Harvey lazy values live in [0, 4q) and must fit the 32-bit lane
 * arithmetic. Wider moduli run the scalar fallback inside each kernel.
 */
inline constexpr uint64_t kLaneModulusBound = uint64_t(1) << 30;

/** @return true iff @p q takes the vector path of the mul kernels. */
inline bool
eligibleModulus(uint64_t q)
{
    return q < kLaneModulusBound;
}

/**
 * One dispatch table. All entries are total functions: they accept
 * any supported modulus and fall back to scalar code when the vector
 * preconditions fail, and their outputs are bit-identical to the
 * scalar table on every input.
 */
struct Kernels
{
    Level level;

    /**
     * In-place forward negacyclic NTT of tables.degree() values.
     * Accepts Harvey lazy inputs in [0, 4q) (for q >= 2^30: [0, q));
     * outputs are canonical [0, q), identical to ntt::forwardNttScalar.
     */
    void (*ntt_forward)(uint64_t *a, const ntt::NttTables &tables);

    /**
     * In-place inverse negacyclic NTT, including the n^{-1} scaling.
     * Inputs in [0, 2q); canonical outputs.
     */
    void (*ntt_inverse)(uint64_t *a, const ntt::NttTables &tables);

    /** a[i] = (a[i] + b[i]) mod q; inputs in [0, q). Any modulus. */
    void (*add_mod)(uint64_t *a, const uint64_t *b, size_t n, uint64_t q);

    /** a[i] = (a[i] - b[i]) mod q; inputs in [0, q). Any modulus. */
    void (*sub_mod)(uint64_t *a, const uint64_t *b, size_t n, uint64_t q);

    /** a[i] = -a[i] mod q; inputs in [0, q). Any modulus. */
    void (*negate_mod)(uint64_t *a, size_t n, uint64_t q);

    /**
     * a[i] = a[i] * w mod q with w in [0, q) and w_shoup =
     * Modulus::shoupPrecompute(w). Inputs in [0, q).
     */
    void (*mul_shoup)(uint64_t *a, size_t n, const rns::Modulus &q,
                      uint64_t w, uint64_t w_shoup);

    /** Out-of-place variant: dst[i] = src[i] * w mod q. */
    void (*mul_shoup_out)(uint64_t *dst, const uint64_t *src, size_t n,
                          const rns::Modulus &q, uint64_t w,
                          uint64_t w_shoup);

    /** a[i] = a[i] * b[i] mod q; inputs in [0, q). */
    void (*mul_mod)(uint64_t *a, const uint64_t *b, size_t n,
                    const rns::Modulus &q);

    /** acc[i] = (acc[i] + a[i] * b[i]) mod q; inputs in [0, q). */
    void (*mac_mod)(uint64_t *acc, const uint64_t *a, const uint64_t *b,
                    size_t n, const rns::Modulus &q);

    /**
     * dst[i] = src[i] mod q for src[i] < 2^32 (the digit-broadcast
     * reduction of rnsDigits). Caller guarantees the value bound.
     */
    void (*reduce_u32)(uint64_t *dst, const uint64_t *src, size_t n,
                       const rns::Modulus &q);

    /**
     * Exact 128-bit sum of products per lane:
     *   (hi[j], lo[j]) = sum_i rows[i][j] * weights[i]
     * for j in [0, count). Preconditions: rows values < 2^30,
     * weights <= 2^60, terms <= kSopMaxTerms. This is the shared HPS
     * lift/scale inner loop (ScaleRounder / FastBaseConverter).
     */
    void (*sop128)(const uint64_t *const *rows, const uint64_t *weights,
                   size_t terms, size_t count, uint64_t *lo, uint64_t *hi);

    /** 128-bit lane add: (hi[j], lo[j]) += add[j]. */
    void (*add128_64)(uint64_t *lo, uint64_t *hi, const uint64_t *add,
                      size_t count);

    /**
     * out[j] = (x[j] + 2^(shift-1)) >> shift for the 128-bit lanes
     * x = (hi, lo); 1 <= shift <= 127 and the result must fit 64 bits.
     */
    void (*round_shift128)(const uint64_t *lo, const uint64_t *hi,
                           size_t count, int shift, uint64_t *out);

    /**
     * out[j] = (hi[j] * 2^64 + lo[j]) mod q, canonical; requires
     * hi[j] < 2^32 (Barrett-identical to Modulus::reduce128).
     */
    void (*reduce128_mod)(const uint64_t *lo, const uint64_t *hi,
                          uint64_t *out, size_t count,
                          const rns::Modulus &q);
};

/** Maximum term count sop128 accepts (64-bit partial-sum headroom). */
inline constexpr size_t kSopMaxTerms = 32;

/** @return the active kernel table (HEAT_SIMD-aware, CPU-detected). */
const Kernels &active();

/**
 * @return the table for a specific level; panics if @p level exceeds
 * detectedLevel(). Lets tests and benches pin a path explicitly.
 */
const Kernels &kernelsFor(Level level);

} // namespace heat::simd

#endif // HEAT_SIMD_SIMD_H
