/**
 * @file
 * AVX-512F kernel table (8 lanes of 64-bit). Compiled with a per-file
 * `-mavx512f`; only reached through the runtime dispatcher.
 *
 * Same 32-bit Shoup/Harvey reduction chains as the AVX2 table (see
 * simd_avx2.cc for the range arguments) — the wins here are twice the
 * lane count and native unsigned 64-bit compares into mask registers
 * (no sign-bias tricks for carries or conditional subtracts).
 */

#include <immintrin.h>

#include "ntt/ntt.h"
#include "ntt/ntt_tables.h"
#include "rns/modulus.h"
#include "simd/simd_internal.h"

namespace heat::simd::detail {

namespace {

inline __m512i
load(const uint64_t *p)
{
    return _mm512_loadu_si512(p);
}

inline void
store(uint64_t *p, __m512i x)
{
    _mm512_storeu_si512(p, x);
}

inline __m512i
set1(uint64_t x)
{
    return _mm512_set1_epi64(static_cast<long long>(x));
}

/** x >= k ? x - k : x via an unsigned mask compare. */
inline __m512i
csub(__m512i x, __m512i k)
{
    const __mmask8 ge = _mm512_cmpge_epu64_mask(x, k);
    return _mm512_mask_sub_epi64(x, ge, x, k);
}

/** See simd_avx2.cc: lazy Shoup product in [0, 2q), a < 2^32. */
inline __m512i
mulShoupLazy32(__m512i a, __m512i w, __m512i phi, __m512i q)
{
    const __m512i quot = _mm512_srli_epi64(_mm512_mul_epu32(a, phi), 32);
    return _mm512_sub_epi64(_mm512_mul_epu32(a, w),
                            _mm512_mul_epu32(quot, q));
}

/** s mod q into [0, 2q) for s < 2^32 (Shoup with w = 1). */
inline __m512i
reduceLazyBy1(__m512i s, __m512i phi1, __m512i q)
{
    const __m512i quot = _mm512_srli_epi64(_mm512_mul_epu32(s, phi1), 32);
    return _mm512_sub_epi64(s, _mm512_mul_epu32(quot, q));
}

void
nttForwardAvx512(uint64_t *a, const ntt::NttTables &tables)
{
    const rns::Modulus &mod = tables.modulus();
    const uint64_t qv = mod.value();
    const size_t n = tables.degree();
    if (!eligibleModulus(qv) || n < 16) {
        ntt::forwardNttScalar({a, n}, tables);
        return;
    }
    const uint64_t two_q = 2 * qv;
    const __m512i vq = set1(qv);
    const __m512i v2q = set1(two_q);

    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 8) {
            for (size_t i = 0; i < m; ++i) {
                const size_t j1 = 2 * i * t;
                const __m512i vw = set1(tables.rootPower(m + i));
                const __m512i vphi =
                    set1(tables.rootPowerShoup(m + i) >> 32);
                for (size_t j = j1; j < j1 + t; j += 8) {
                    __m512i u = csub(load(a + j), v2q);
                    const __m512i v =
                        mulShoupLazy32(load(a + j + t), vw, vphi, vq);
                    store(a + j, _mm512_add_epi64(u, v));
                    store(a + j + t,
                          _mm512_add_epi64(_mm512_sub_epi64(u, v), v2q));
                }
            }
        } else {
            for (size_t i = 0; i < m; ++i) {
                const size_t j1 = 2 * i * t;
                const uint64_t w = tables.rootPower(m + i);
                const uint64_t w_shoup = tables.rootPowerShoup(m + i);
                for (size_t j = j1; j < j1 + t; ++j) {
                    uint64_t u = a[j];
                    if (u >= two_q)
                        u -= two_q;
                    const uint64_t v =
                        mod.mulShoupLazy(a[j + t], w, w_shoup);
                    a[j] = u + v;
                    a[j + t] = u - v + two_q;
                }
            }
        }
    }
    for (size_t j = 0; j < n; j += 8)
        store(a + j, csub(csub(load(a + j), v2q), vq));
}

void
nttInverseAvx512(uint64_t *a, const ntt::NttTables &tables)
{
    const rns::Modulus &mod = tables.modulus();
    const uint64_t qv = mod.value();
    const size_t n = tables.degree();
    if (!eligibleModulus(qv) || n < 16) {
        ntt::inverseNttScalar({a, n}, tables);
        return;
    }
    const uint64_t two_q = 2 * qv;
    const __m512i vq = set1(qv);
    const __m512i v2q = set1(two_q);

    size_t t = 1;
    for (size_t h = n >> 1; h >= 1; h >>= 1) {
        if (t >= 8) {
            for (size_t i = 0; i < h; ++i) {
                const size_t j1 = 2 * i * t;
                const __m512i vw = set1(tables.invRootPower(h + i));
                const __m512i vphi =
                    set1(tables.invRootPowerShoup(h + i) >> 32);
                for (size_t j = j1; j < j1 + t; j += 8) {
                    const __m512i u = load(a + j);
                    const __m512i v = load(a + j + t);
                    store(a + j, csub(_mm512_add_epi64(u, v), v2q));
                    const __m512i x =
                        _mm512_add_epi64(_mm512_sub_epi64(u, v), v2q);
                    store(a + j + t, mulShoupLazy32(x, vw, vphi, vq));
                }
            }
        } else {
            for (size_t i = 0; i < h; ++i) {
                const size_t j1 = 2 * i * t;
                const uint64_t w = tables.invRootPower(h + i);
                const uint64_t w_shoup = tables.invRootPowerShoup(h + i);
                for (size_t j = j1; j < j1 + t; ++j) {
                    const uint64_t u = a[j];
                    const uint64_t v = a[j + t];
                    uint64_t s = u + v;
                    if (s >= two_q)
                        s -= two_q;
                    a[j] = s;
                    a[j + t] = mod.mulShoupLazy(u - v + two_q, w, w_shoup);
                }
            }
        }
        t <<= 1;
    }

    const __m512i vn_inv = set1(tables.invDegree());
    const __m512i vphi_n = set1(tables.invDegreeShoup() >> 32);
    for (size_t j = 0; j < n; j += 8) {
        const __m512i r =
            mulShoupLazy32(load(a + j), vn_inv, vphi_n, vq);
        store(a + j, csub(r, vq));
    }
}

void
addModAvx512(uint64_t *a, const uint64_t *b, size_t n, uint64_t q)
{
    const __m512i vq = set1(q);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i s = _mm512_add_epi64(load(a + j), load(b + j));
        store(a + j, csub(s, vq));
    }
    addModScalar(a + j, b + j, n - j, q);
}

void
subModAvx512(uint64_t *a, const uint64_t *b, size_t n, uint64_t q)
{
    const __m512i vq = set1(q);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i va = load(a + j);
        const __m512i vb = load(b + j);
        const __mmask8 lt = _mm512_cmplt_epu64_mask(va, vb);
        const __m512i d = _mm512_sub_epi64(va, vb);
        store(a + j, _mm512_mask_add_epi64(d, lt, d, vq));
    }
    subModScalar(a + j, b + j, n - j, q);
}

void
negateModAvx512(uint64_t *a, size_t n, uint64_t q)
{
    const __m512i vq = set1(q);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i va = load(a + j);
        const __mmask8 nz = _mm512_test_epi64_mask(va, va);
        store(a + j, _mm512_maskz_sub_epi64(nz, vq, va));
    }
    negateModScalar(a + j, n - j, q);
}

void
mulShoupOutAvx512(uint64_t *dst, const uint64_t *src, size_t n,
                  const rns::Modulus &q, uint64_t w, uint64_t w_shoup)
{
    if (!eligibleModulus(q.value())) {
        mulShoupOutScalar(dst, src, n, q, w, w_shoup);
        return;
    }
    const __m512i vq = set1(q.value());
    const __m512i vw = set1(w);
    const __m512i vphi = set1(w_shoup >> 32);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i r = mulShoupLazy32(load(src + j), vw, vphi, vq);
        store(dst + j, csub(r, vq));
    }
    mulShoupOutScalar(dst + j, src + j, n - j, q, w, w_shoup);
}

void
mulShoupAvx512(uint64_t *a, size_t n, const rns::Modulus &q, uint64_t w,
               uint64_t w_shoup)
{
    mulShoupOutAvx512(a, a, n, q, w, w_shoup);
}

/** a[i]*b[i] mod q into [0, 2q); a, b < q < 2^30. */
inline __m512i
mulModLazy(__m512i va, __m512i vb, __m512i vq, __m512i vphi1,
           __m512i vc32, __m512i vphi_c32, __m512i mask32)
{
    const __m512i x = _mm512_mul_epu32(va, vb); // exact, < 2^60
    const __m512i d = _mm512_srli_epi64(x, 32);
    const __m512i l = _mm512_and_epi64(x, mask32);
    const __m512i t1 = mulShoupLazy32(d, vc32, vphi_c32, vq);
    const __m512i t3 = reduceLazyBy1(l, vphi1, vq);
    const __m512i s = _mm512_add_epi64(t1, t3); // < 4q < 2^32
    return reduceLazyBy1(s, vphi1, vq);
}

void
mulModAvx512(uint64_t *a, const uint64_t *b, size_t n,
             const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        mulModScalar(a, b, n, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m512i vq = set1(mc.q);
    const __m512i vphi1 = set1(mc.phi1);
    const __m512i vc32 = set1(mc.c32);
    const __m512i vphi_c32 = set1(mc.phi_c32);
    const __m512i mask32 = set1(0xffffffffu);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i r = mulModLazy(load(a + j), load(b + j), vq,
                                     vphi1, vc32, vphi_c32, mask32);
        store(a + j, csub(r, vq));
    }
    mulModScalar(a + j, b + j, n - j, q);
}

void
macModAvx512(uint64_t *acc, const uint64_t *a, const uint64_t *b,
             size_t n, const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        macModScalar(acc, a, b, n, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m512i vq = set1(mc.q);
    const __m512i vphi1 = set1(mc.phi1);
    const __m512i vc32 = set1(mc.c32);
    const __m512i vphi_c32 = set1(mc.phi_c32);
    const __m512i mask32 = set1(0xffffffffu);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i p =
            csub(mulModLazy(load(a + j), load(b + j), vq, vphi1, vc32,
                            vphi_c32, mask32),
                 vq);
        const __m512i s = _mm512_add_epi64(load(acc + j), p);
        store(acc + j, csub(s, vq));
    }
    macModScalar(acc + j, a + j, b + j, n - j, q);
}

void
reduceU32Avx512(uint64_t *dst, const uint64_t *src, size_t n,
                const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        reduceU32Scalar(dst, src, n, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m512i vq = set1(mc.q);
    const __m512i vphi1 = set1(mc.phi1);
    size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m512i r = reduceLazyBy1(load(src + j), vphi1, vq);
        store(dst + j, csub(r, vq));
    }
    reduceU32Scalar(dst + j, src + j, n - j, q);
}

void
sop128Avx512(const uint64_t *const *rows, const uint64_t *weights,
             size_t terms, size_t count, uint64_t *lo, uint64_t *hi)
{
    const __m512i one = set1(1);
    size_t j = 0;
    for (; j + 8 <= count; j += 8) {
        __m512i acc_lo = _mm512_setzero_si512();
        __m512i acc_mid = _mm512_setzero_si512();
        __m512i acc_hi = _mm512_setzero_si512();
        for (size_t i = 0; i < terms; ++i) {
            const __m512i v = load(rows[i] + j);
            const __m512i wlo = set1(weights[i] & 0xffffffffu);
            const __m512i whi = set1(weights[i] >> 32);
            const __m512i plo = _mm512_mul_epu32(v, wlo);
            const __m512i s = _mm512_add_epi64(acc_lo, plo);
            const __mmask8 carry = _mm512_cmplt_epu64_mask(s, plo);
            acc_hi = _mm512_mask_add_epi64(acc_hi, carry, acc_hi, one);
            acc_lo = s;
            acc_mid =
                _mm512_add_epi64(acc_mid, _mm512_mul_epu32(v, whi));
        }
        const __m512i mid_lo = _mm512_slli_epi64(acc_mid, 32);
        const __m512i s = _mm512_add_epi64(acc_lo, mid_lo);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(s, mid_lo);
        acc_hi = _mm512_mask_add_epi64(acc_hi, carry, acc_hi, one);
        store(lo + j, s);
        store(hi + j,
              _mm512_add_epi64(acc_hi, _mm512_srli_epi64(acc_mid, 32)));
    }
    if (j < count) {
        const uint64_t *tail_rows[kSopMaxTerms];
        for (size_t i = 0; i < terms; ++i)
            tail_rows[i] = rows[i] + j;
        sop128Scalar(tail_rows, weights, terms, count - j, lo + j,
                     hi + j);
    }
}

void
add128_64Avx512(uint64_t *lo, uint64_t *hi, const uint64_t *add,
                size_t count)
{
    const __m512i one = set1(1);
    size_t j = 0;
    for (; j + 8 <= count; j += 8) {
        const __m512i va = load(add + j);
        const __m512i s = _mm512_add_epi64(load(lo + j), va);
        const __mmask8 carry = _mm512_cmplt_epu64_mask(s, va);
        store(lo + j, s);
        const __m512i h = load(hi + j);
        store(hi + j, _mm512_mask_add_epi64(h, carry, h, one));
    }
    add128_64Scalar(lo + j, hi + j, add + j, count - j);
}

void
roundShift128Avx512(const uint64_t *lo, const uint64_t *hi, size_t count,
                    int shift, uint64_t *out)
{
    // Same call as AVX2: memory-bound, the scalar body keeps up.
    roundShift128Scalar(lo, hi, count, shift, out);
}

void
reduce128ModAvx512(const uint64_t *lo, const uint64_t *hi, uint64_t *out,
                   size_t count, const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        reduce128ModScalar(lo, hi, out, count, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m512i vq = set1(mc.q);
    const __m512i v2q = set1(2 * mc.q);
    const __m512i vphi1 = set1(mc.phi1);
    const __m512i vc32 = set1(mc.c32);
    const __m512i vphi_c32 = set1(mc.phi_c32);
    const __m512i vc64 = set1(mc.c64);
    const __m512i vphi_c64 = set1(mc.phi_c64);
    const __m512i mask32 = set1(0xffffffffu);
    size_t j = 0;
    for (; j + 8 <= count; j += 8) {
        const __m512i vhi = load(hi + j); // < 2^32 by contract
        const __m512i vlo = load(lo + j);
        const __m512i t = mulShoupLazy32(vhi, vc64, vphi_c64, vq);
        const __m512i t2 = mulShoupLazy32(_mm512_srli_epi64(vlo, 32),
                                          vc32, vphi_c32, vq);
        const __m512i t3 =
            reduceLazyBy1(_mm512_and_epi64(vlo, mask32), vphi1, vq);
        __m512i s = csub(_mm512_add_epi64(t, t2), v2q);
        s = _mm512_add_epi64(s, t3); // < 4q < 2^32
        const __m512i r = reduceLazyBy1(s, vphi1, vq);
        store(out + j, csub(r, vq));
    }
    reduce128ModScalar(lo + j, hi + j, out + j, count - j, q);
}

} // namespace

const Kernels &
avx512Kernels()
{
    static const Kernels table = {
        Level::kAvx512,  nttForwardAvx512, nttInverseAvx512,
        addModAvx512,    subModAvx512,     negateModAvx512,
        mulShoupAvx512,  mulShoupOutAvx512, mulModAvx512,
        macModAvx512,    reduceU32Avx512,  sop128Avx512,
        add128_64Avx512, roundShift128Avx512, reduce128ModAvx512,
    };
    return table;
}

} // namespace heat::simd::detail
