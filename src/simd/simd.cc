#include "simd/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/bit_util.h"
#include "common/panic.h"
#include "ntt/ntt.h"
#include "rns/modulus.h"
#include "simd/simd_internal.h"

namespace heat::simd {

namespace detail {

void
addModScalar(uint64_t *a, const uint64_t *b, size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i) {
        const uint64_t s = a[i] + b[i];
        a[i] = s >= q ? s - q : s;
    }
}

void
subModScalar(uint64_t *a, const uint64_t *b, size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + q - b[i];
}

void
negateModScalar(uint64_t *a, size_t n, uint64_t q)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = a[i] == 0 ? 0 : q - a[i];
}

void
mulShoupScalar(uint64_t *a, size_t n, const rns::Modulus &q, uint64_t w,
               uint64_t w_shoup)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mulShoup(a[i], w, w_shoup);
}

void
mulShoupOutScalar(uint64_t *dst, const uint64_t *src, size_t n,
                  const rns::Modulus &q, uint64_t w, uint64_t w_shoup)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = q.mulShoup(src[i], w, w_shoup);
}

void
mulModScalar(uint64_t *a, const uint64_t *b, size_t n,
             const rns::Modulus &q)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = q.mul(a[i], b[i]);
}

void
macModScalar(uint64_t *acc, const uint64_t *a, const uint64_t *b, size_t n,
             const rns::Modulus &q)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] = q.add(acc[i], q.mul(a[i], b[i]));
}

void
reduceU32Scalar(uint64_t *dst, const uint64_t *src, size_t n,
                const rns::Modulus &q)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = q.reduce(src[i]);
}

void
sop128Scalar(const uint64_t *const *rows, const uint64_t *weights,
             size_t terms, size_t count, uint64_t *lo, uint64_t *hi)
{
    for (size_t j = 0; j < count; ++j) {
        uint128_t acc = 0;
        for (size_t i = 0; i < terms; ++i)
            acc += mulWide64(rows[i][j], weights[i]);
        lo[j] = static_cast<uint64_t>(acc);
        hi[j] = static_cast<uint64_t>(acc >> 64);
    }
}

void
add128_64Scalar(uint64_t *lo, uint64_t *hi, const uint64_t *add,
                size_t count)
{
    for (size_t j = 0; j < count; ++j) {
        const uint64_t s = lo[j] + add[j];
        hi[j] += s < add[j] ? 1 : 0;
        lo[j] = s;
    }
}

void
roundShift128Scalar(const uint64_t *lo, const uint64_t *hi, size_t count,
                    int shift, uint64_t *out)
{
    panicIf(shift < 1 || shift > 127, "round_shift128 shift out of range");
    const uint128_t half = uint128_t(1) << (shift - 1);
    for (size_t j = 0; j < count; ++j) {
        const uint128_t x = (uint128_t(hi[j]) << 64) | lo[j];
        out[j] = static_cast<uint64_t>((x + half) >> shift);
    }
}

void
reduce128ModScalar(const uint64_t *lo, const uint64_t *hi, uint64_t *out,
                   size_t count, const rns::Modulus &q)
{
    for (size_t j = 0; j < count; ++j)
        out[j] = q.reduce128((uint128_t(hi[j]) << 64) | lo[j]);
}

Mod32Constants
mod32Constants(const rns::Modulus &q)
{
    const uint64_t qv = q.value();
    Mod32Constants c;
    c.q = qv;
    c.phi1 = static_cast<uint64_t>((uint128_t(1) << 32) / qv);
    c.c32 = static_cast<uint64_t>((uint128_t(1) << 32) % qv);
    c.phi_c32 = static_cast<uint64_t>((uint128_t(c.c32) << 32) / qv);
    c.c64 = static_cast<uint64_t>((uint128_t(1) << 64) % qv);
    c.phi_c64 = static_cast<uint64_t>((uint128_t(c.c64) << 32) / qv);
    return c;
}

namespace {

void
nttForwardScalarEntry(uint64_t *a, const ntt::NttTables &tables)
{
    ntt::forwardNttScalar({a, tables.degree()}, tables);
}

void
nttInverseScalarEntry(uint64_t *a, const ntt::NttTables &tables)
{
    ntt::inverseNttScalar({a, tables.degree()}, tables);
}

} // namespace

const Kernels &
scalarKernels()
{
    static const Kernels table = {
        Level::kScalar,    nttForwardScalarEntry, nttInverseScalarEntry,
        addModScalar,      subModScalar,          negateModScalar,
        mulShoupScalar,    mulShoupOutScalar,     mulModScalar,
        macModScalar,      reduceU32Scalar,       sop128Scalar,
        add128_64Scalar,   roundShift128Scalar,   reduce128ModScalar,
    };
    return table;
}

} // namespace detail

const char *
levelName(Level level)
{
    switch (level) {
    case Level::kScalar:
        return "scalar";
    case Level::kAvx2:
        return "avx2";
    case Level::kAvx512:
        return "avx512";
    }
    return "unknown";
}

Level
detectedLevel()
{
    static const Level level = [] {
#if defined(HEAT_HAVE_AVX512)
        if (__builtin_cpu_supports("avx512f"))
            return Level::kAvx512;
#endif
#if defined(HEAT_HAVE_AVX2)
        if (__builtin_cpu_supports("avx2"))
            return Level::kAvx2;
#endif
        return Level::kScalar;
    }();
    return level;
}

const Kernels &
kernelsFor(Level level)
{
    panicIf(level > detectedLevel(),
            "requested SIMD level is not available on this host/build");
    switch (level) {
    case Level::kScalar:
        return detail::scalarKernels();
    case Level::kAvx2:
#if defined(HEAT_HAVE_AVX2)
        return detail::avx2Kernels();
#else
        break;
#endif
    case Level::kAvx512:
#if defined(HEAT_HAVE_AVX512)
        return detail::avx512Kernels();
#else
        break;
#endif
    }
    panic("SIMD level not compiled into this binary");
}

namespace {

/**
 * Initial level: the detected maximum, lowered by HEAT_SIMD. Requests
 * above the detected level clamp down (so HEAT_SIMD=avx512 is safe in
 * scripts that run on mixed fleets); unrecognized values are fatal.
 */
Level
initialLevel()
{
    Level level = detectedLevel();
    const char *env = std::getenv("HEAT_SIMD");
    if (env == nullptr || *env == '\0')
        return level;
    Level requested;
    if (std::strcmp(env, "scalar") == 0)
        requested = Level::kScalar;
    else if (std::strcmp(env, "avx2") == 0)
        requested = Level::kAvx2;
    else if (std::strcmp(env, "avx512") == 0)
        requested = Level::kAvx512;
    else
        fatal("HEAT_SIMD must be scalar, avx2 or avx512");
    return requested < level ? requested : level;
}

std::atomic<const Kernels *> g_active{nullptr};

} // namespace

const Kernels &
active()
{
    const Kernels *k = g_active.load(std::memory_order_acquire);
    if (k == nullptr) {
        // Benign race: concurrent first calls resolve the same table.
        k = &kernelsFor(initialLevel());
        g_active.store(k, std::memory_order_release);
    }
    return *k;
}

Level
activeLevel()
{
    return active().level;
}

void
setLevel(Level level)
{
    if (level > detectedLevel())
        level = detectedLevel();
    g_active.store(&kernelsFor(level), std::memory_order_release);
}

} // namespace heat::simd
