/**
 * @file
 * AVX2 kernel table (4 lanes of 64-bit). Compiled with a per-file
 * `-mavx2`; only reached through the runtime dispatcher.
 *
 * All multiply-based kernels use 32-bit Shoup/Harvey lazy reduction:
 * with q < 2^30 every live value fits 32 bits, so one vpmuludq gives a
 * full product and quot = floor(a * floor(w*2^32/q) / 2^32) leaves
 * r = a*w - quot*q in [0, 2q) (Harvey's bound holds for any a < 2^32,
 * w < q). The 32-bit Shoup constant is the top half of the stored
 * 64-bit one: floor(w*2^64/q) >> 32 == floor(w*2^32/q). Lazy values
 * differ from the scalar oracle's by multiples of q, but every kernel
 * normalizes its outputs, so results are bit-identical. Wider moduli
 * and sub-lane tails run the scalar bodies.
 */

#include <immintrin.h>

#include "ntt/ntt.h"
#include "ntt/ntt_tables.h"
#include "rns/modulus.h"
#include "simd/simd_internal.h"

namespace heat::simd::detail {

namespace {

inline __m256i
load(const uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
store(uint64_t *p, __m256i x)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), x);
}

inline __m256i
set1(uint64_t x)
{
    return _mm256_set1_epi64x(static_cast<long long>(x));
}

/** x >= k ? x - k : x; valid for x, k < 2^63 (signed compare). */
inline __m256i
csub(__m256i x, __m256i k)
{
    const __m256i lt = _mm256_cmpgt_epi64(k, x);
    return _mm256_sub_epi64(x, _mm256_andnot_si256(lt, k));
}

/** Unsigned 64-bit a < b lane mask (sign-bias trick). */
inline __m256i
ltu64(__m256i a, __m256i b, __m256i bias)
{
    return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                              _mm256_xor_si256(a, bias));
}

/**
 * Harvey lazy Shoup: a*w - floor(a*phi/2^32)*q in [0, 2q) for
 * a < 2^32, w < q < 2^30, phi = floor(w*2^32/q).
 */
inline __m256i
mulShoupLazy32(__m256i a, __m256i w, __m256i phi, __m256i q)
{
    const __m256i quot = _mm256_srli_epi64(_mm256_mul_epu32(a, phi), 32);
    return _mm256_sub_epi64(_mm256_mul_epu32(a, w),
                            _mm256_mul_epu32(quot, q));
}

/** s mod q into [0, 2q) for s < 2^32 (Shoup with w = 1). */
inline __m256i
reduceLazyBy1(__m256i s, __m256i phi1, __m256i q)
{
    const __m256i quot = _mm256_srli_epi64(_mm256_mul_epu32(s, phi1), 32);
    return _mm256_sub_epi64(s, _mm256_mul_epu32(quot, q));
}

void
nttForwardAvx2(uint64_t *a, const ntt::NttTables &tables)
{
    const rns::Modulus &mod = tables.modulus();
    const uint64_t qv = mod.value();
    const size_t n = tables.degree();
    if (!eligibleModulus(qv) || n < 8) {
        ntt::forwardNttScalar({a, n}, tables);
        return;
    }
    const uint64_t two_q = 2 * qv;
    const __m256i vq = set1(qv);
    const __m256i v2q = set1(two_q);

    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 4) {
            for (size_t i = 0; i < m; ++i) {
                const size_t j1 = 2 * i * t;
                const __m256i vw = set1(tables.rootPower(m + i));
                const __m256i vphi =
                    set1(tables.rootPowerShoup(m + i) >> 32);
                for (size_t j = j1; j < j1 + t; j += 4) {
                    __m256i u = csub(load(a + j), v2q);
                    const __m256i v =
                        mulShoupLazy32(load(a + j + t), vw, vphi, vq);
                    store(a + j, _mm256_add_epi64(u, v));
                    store(a + j + t,
                          _mm256_add_epi64(_mm256_sub_epi64(u, v), v2q));
                }
            }
        } else {
            // Sub-lane tail stages: the oracle's 64-bit butterflies.
            for (size_t i = 0; i < m; ++i) {
                const size_t j1 = 2 * i * t;
                const uint64_t w = tables.rootPower(m + i);
                const uint64_t w_shoup = tables.rootPowerShoup(m + i);
                for (size_t j = j1; j < j1 + t; ++j) {
                    uint64_t u = a[j];
                    if (u >= two_q)
                        u -= two_q;
                    const uint64_t v =
                        mod.mulShoupLazy(a[j + t], w, w_shoup);
                    a[j] = u + v;
                    a[j + t] = u - v + two_q;
                }
            }
        }
    }
    for (size_t j = 0; j < n; j += 4)
        store(a + j, csub(csub(load(a + j), v2q), vq));
}

void
nttInverseAvx2(uint64_t *a, const ntt::NttTables &tables)
{
    const rns::Modulus &mod = tables.modulus();
    const uint64_t qv = mod.value();
    const size_t n = tables.degree();
    if (!eligibleModulus(qv) || n < 8) {
        ntt::inverseNttScalar({a, n}, tables);
        return;
    }
    const uint64_t two_q = 2 * qv;
    const __m256i vq = set1(qv);
    const __m256i v2q = set1(two_q);

    size_t t = 1;
    for (size_t h = n >> 1; h >= 1; h >>= 1) {
        if (t >= 4) {
            for (size_t i = 0; i < h; ++i) {
                const size_t j1 = 2 * i * t;
                const __m256i vw = set1(tables.invRootPower(h + i));
                const __m256i vphi =
                    set1(tables.invRootPowerShoup(h + i) >> 32);
                for (size_t j = j1; j < j1 + t; j += 4) {
                    const __m256i u = load(a + j);
                    const __m256i v = load(a + j + t);
                    store(a + j, csub(_mm256_add_epi64(u, v), v2q));
                    const __m256i x =
                        _mm256_add_epi64(_mm256_sub_epi64(u, v), v2q);
                    store(a + j + t, mulShoupLazy32(x, vw, vphi, vq));
                }
            }
        } else {
            for (size_t i = 0; i < h; ++i) {
                const size_t j1 = 2 * i * t;
                const uint64_t w = tables.invRootPower(h + i);
                const uint64_t w_shoup = tables.invRootPowerShoup(h + i);
                for (size_t j = j1; j < j1 + t; ++j) {
                    const uint64_t u = a[j];
                    const uint64_t v = a[j + t];
                    uint64_t s = u + v;
                    if (s >= two_q)
                        s -= two_q;
                    a[j] = s;
                    a[j + t] = mod.mulShoupLazy(u - v + two_q, w, w_shoup);
                }
            }
        }
        t <<= 1;
    }

    const __m256i vn_inv = set1(tables.invDegree());
    const __m256i vphi_n = set1(tables.invDegreeShoup() >> 32);
    for (size_t j = 0; j < n; j += 4) {
        const __m256i r =
            mulShoupLazy32(load(a + j), vn_inv, vphi_n, vq);
        store(a + j, csub(r, vq));
    }
}

void
addModAvx2(uint64_t *a, const uint64_t *b, size_t n, uint64_t q)
{
    const __m256i vq = set1(q);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i s = _mm256_add_epi64(load(a + j), load(b + j));
        store(a + j, csub(s, vq));
    }
    addModScalar(a + j, b + j, n - j, q);
}

void
subModAvx2(uint64_t *a, const uint64_t *b, size_t n, uint64_t q)
{
    const __m256i vq = set1(q);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i va = load(a + j);
        const __m256i vb = load(b + j);
        const __m256i lt = _mm256_cmpgt_epi64(vb, va);
        const __m256i d = _mm256_sub_epi64(va, vb);
        store(a + j, _mm256_add_epi64(d, _mm256_and_si256(lt, vq)));
    }
    subModScalar(a + j, b + j, n - j, q);
}

void
negateModAvx2(uint64_t *a, size_t n, uint64_t q)
{
    const __m256i vq = set1(q);
    const __m256i zero = _mm256_setzero_si256();
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i va = load(a + j);
        const __m256i eq = _mm256_cmpeq_epi64(va, zero);
        store(a + j,
              _mm256_andnot_si256(eq, _mm256_sub_epi64(vq, va)));
    }
    negateModScalar(a + j, n - j, q);
}

void
mulShoupOutAvx2(uint64_t *dst, const uint64_t *src, size_t n,
                const rns::Modulus &q, uint64_t w, uint64_t w_shoup)
{
    if (!eligibleModulus(q.value())) {
        mulShoupOutScalar(dst, src, n, q, w, w_shoup);
        return;
    }
    const __m256i vq = set1(q.value());
    const __m256i vw = set1(w);
    const __m256i vphi = set1(w_shoup >> 32);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i r = mulShoupLazy32(load(src + j), vw, vphi, vq);
        store(dst + j, csub(r, vq));
    }
    mulShoupOutScalar(dst + j, src + j, n - j, q, w, w_shoup);
}

void
mulShoupAvx2(uint64_t *a, size_t n, const rns::Modulus &q, uint64_t w,
             uint64_t w_shoup)
{
    mulShoupOutAvx2(a, a, n, q, w, w_shoup);
}

/** a[i]*b[i] mod q into [0, 2q); a, b < q < 2^30. */
inline __m256i
mulModLazy(__m256i va, __m256i vb, __m256i vq, __m256i vphi1,
           __m256i vc32, __m256i vphi_c32, __m256i mask32)
{
    const __m256i x = _mm256_mul_epu32(va, vb); // exact, < 2^60
    const __m256i d = _mm256_srli_epi64(x, 32);
    const __m256i l = _mm256_and_si256(x, mask32);
    const __m256i t1 = mulShoupLazy32(d, vc32, vphi_c32, vq);
    const __m256i t3 = reduceLazyBy1(l, vphi1, vq);
    const __m256i s = _mm256_add_epi64(t1, t3); // < 4q < 2^32
    return reduceLazyBy1(s, vphi1, vq);
}

void
mulModAvx2(uint64_t *a, const uint64_t *b, size_t n,
           const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        mulModScalar(a, b, n, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m256i vq = set1(mc.q);
    const __m256i vphi1 = set1(mc.phi1);
    const __m256i vc32 = set1(mc.c32);
    const __m256i vphi_c32 = set1(mc.phi_c32);
    const __m256i mask32 = set1(0xffffffffu);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i r = mulModLazy(load(a + j), load(b + j), vq,
                                     vphi1, vc32, vphi_c32, mask32);
        store(a + j, csub(r, vq));
    }
    mulModScalar(a + j, b + j, n - j, q);
}

void
macModAvx2(uint64_t *acc, const uint64_t *a, const uint64_t *b, size_t n,
           const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        macModScalar(acc, a, b, n, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m256i vq = set1(mc.q);
    const __m256i vphi1 = set1(mc.phi1);
    const __m256i vc32 = set1(mc.c32);
    const __m256i vphi_c32 = set1(mc.phi_c32);
    const __m256i mask32 = set1(0xffffffffu);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i p =
            csub(mulModLazy(load(a + j), load(b + j), vq, vphi1, vc32,
                            vphi_c32, mask32),
                 vq);
        const __m256i s = _mm256_add_epi64(load(acc + j), p);
        store(acc + j, csub(s, vq));
    }
    macModScalar(acc + j, a + j, b + j, n - j, q);
}

void
reduceU32Avx2(uint64_t *dst, const uint64_t *src, size_t n,
              const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        reduceU32Scalar(dst, src, n, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m256i vq = set1(mc.q);
    const __m256i vphi1 = set1(mc.phi1);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256i r = reduceLazyBy1(load(src + j), vphi1, vq);
        store(dst + j, csub(r, vq));
    }
    reduceU32Scalar(dst + j, src + j, n - j, q);
}

void
sop128Avx2(const uint64_t *const *rows, const uint64_t *weights,
           size_t terms, size_t count, uint64_t *lo, uint64_t *hi)
{
    const __m256i bias = set1(uint64_t(1) << 63);
    const __m256i one = set1(1);
    size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        __m256i acc_lo = _mm256_setzero_si256();
        __m256i acc_mid = _mm256_setzero_si256();
        __m256i acc_hi = _mm256_setzero_si256();
        for (size_t i = 0; i < terms; ++i) {
            const __m256i v = load(rows[i] + j);
            const __m256i wlo = set1(weights[i] & 0xffffffffu);
            const __m256i whi = set1(weights[i] >> 32);
            const __m256i plo = _mm256_mul_epu32(v, wlo);
            const __m256i s = _mm256_add_epi64(acc_lo, plo);
            const __m256i carry = ltu64(s, plo, bias);
            acc_hi =
                _mm256_add_epi64(acc_hi, _mm256_and_si256(carry, one));
            acc_lo = s;
            acc_mid =
                _mm256_add_epi64(acc_mid, _mm256_mul_epu32(v, whi));
        }
        const __m256i mid_lo = _mm256_slli_epi64(acc_mid, 32);
        const __m256i s = _mm256_add_epi64(acc_lo, mid_lo);
        const __m256i carry = ltu64(s, mid_lo, bias);
        acc_hi = _mm256_add_epi64(acc_hi, _mm256_and_si256(carry, one));
        store(lo + j, s);
        store(hi + j,
              _mm256_add_epi64(acc_hi, _mm256_srli_epi64(acc_mid, 32)));
    }
    if (j < count) {
        const uint64_t *tail_rows[kSopMaxTerms];
        for (size_t i = 0; i < terms; ++i)
            tail_rows[i] = rows[i] + j;
        sop128Scalar(tail_rows, weights, terms, count - j, lo + j,
                     hi + j);
    }
}

void
add128_64Avx2(uint64_t *lo, uint64_t *hi, const uint64_t *add,
              size_t count)
{
    const __m256i bias = set1(uint64_t(1) << 63);
    const __m256i one = set1(1);
    size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        const __m256i va = load(add + j);
        const __m256i s = _mm256_add_epi64(load(lo + j), va);
        const __m256i carry = ltu64(s, va, bias);
        store(lo + j, s);
        store(hi + j, _mm256_add_epi64(load(hi + j),
                                       _mm256_and_si256(carry, one)));
    }
    add128_64Scalar(lo + j, hi + j, add + j, count - j);
}

void
roundShift128Avx2(const uint64_t *lo, const uint64_t *hi, size_t count,
                  int shift, uint64_t *out)
{
    // Few ops per lane and one call per coefficient block: the scalar
    // body keeps up with loads/stores here, so share it.
    roundShift128Scalar(lo, hi, count, shift, out);
}

void
reduce128ModAvx2(const uint64_t *lo, const uint64_t *hi, uint64_t *out,
                 size_t count, const rns::Modulus &q)
{
    if (!eligibleModulus(q.value())) {
        reduce128ModScalar(lo, hi, out, count, q);
        return;
    }
    const Mod32Constants mc = mod32Constants(q);
    const __m256i vq = set1(mc.q);
    const __m256i v2q = set1(2 * mc.q);
    const __m256i vphi1 = set1(mc.phi1);
    const __m256i vc32 = set1(mc.c32);
    const __m256i vphi_c32 = set1(mc.phi_c32);
    const __m256i vc64 = set1(mc.c64);
    const __m256i vphi_c64 = set1(mc.phi_c64);
    const __m256i mask32 = set1(0xffffffffu);
    size_t j = 0;
    for (; j + 4 <= count; j += 4) {
        const __m256i vhi = load(hi + j); // < 2^32 by contract
        const __m256i vlo = load(lo + j);
        const __m256i t = mulShoupLazy32(vhi, vc64, vphi_c64, vq);
        const __m256i t2 = mulShoupLazy32(_mm256_srli_epi64(vlo, 32),
                                          vc32, vphi_c32, vq);
        const __m256i t3 =
            reduceLazyBy1(_mm256_and_si256(vlo, mask32), vphi1, vq);
        __m256i s = csub(_mm256_add_epi64(t, t2), v2q);
        s = _mm256_add_epi64(s, t3); // < 4q < 2^32
        const __m256i r = reduceLazyBy1(s, vphi1, vq);
        store(out + j, csub(r, vq));
    }
    reduce128ModScalar(lo + j, hi + j, out + j, count - j, q);
}

} // namespace

const Kernels &
avx2Kernels()
{
    static const Kernels table = {
        Level::kAvx2,    nttForwardAvx2, nttInverseAvx2,
        addModAvx2,      subModAvx2,     negateModAvx2,
        mulShoupAvx2,    mulShoupOutAvx2, mulModAvx2,
        macModAvx2,      reduceU32Avx2,  sop128Avx2,
        add128_64Avx2,   roundShift128Avx2, reduce128ModAvx2,
    };
    return table;
}

} // namespace heat::simd::detail
